"""End-to-end tests of Algorithm 1 with influence constraint trees."""

import pytest

from repro.influence import (
    InfluenceNode,
    InfluenceTree,
    build_influence_tree,
    theta_iter,
)
from repro.ir.examples import matmul, running_example, transpose_add
from repro.schedule import InfluencedScheduler, SchedulerOptions
from repro.schedule.analysis import verify_schedule
from repro.solver.problem import var


def schedule_with_tree(kernel, tree, **opts):
    scheduler = InfluencedScheduler(kernel, options=SchedulerOptions(**opts))
    return scheduler, scheduler.schedule(tree)


class TestRunningExampleInfluenced:
    @pytest.fixture(scope="class")
    def result(self):
        kernel = running_example(16)
        tree = build_influence_tree(kernel)
        return schedule_with_tree(kernel, tree)

    def test_valid(self, result):
        scheduler, schedule = result
        assert verify_schedule(schedule, scheduler.validity_relations) == []

    def test_vector_dimension_marked(self, result):
        _, schedule = result
        dim = schedule.vector_dim()
        assert dim is not None
        assert schedule.dims[dim].vector_width == 4

    def test_vector_dimension_is_pure_j(self, result):
        _, schedule = result
        dim = schedule.vector_dim()
        row = schedule.rows["Y"][dim]
        assert row.coefficient_of("j") == 1
        assert row.coefficient_of("i") == 0
        assert row.coefficient_of("k") == 0

    def test_influence_was_applied(self, result):
        scheduler, schedule = result
        assert scheduler.stats.influence_nodes_applied > 0
        assert not scheduler.stats.influence_abandoned
        assert any(info.from_influence for info in schedule.dims)

    def test_complete(self, result):
        _, schedule = result
        assert schedule.is_complete()


class TestHandBuiltTree:
    """A tree reproducing Fig. 3(b)'s structure by hand: dims 0-1 forbid j,
    dim 2 pins j with coefficient exactly 1."""

    def build_tree(self):
        tree = InfluenceTree()
        # j is iterator index 1 of Y (iterators i, j, k).
        d0 = tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("Y", 0, 1)).eq(0)], label="d0"))
        d1 = d0.add_child(InfluenceNode(
            constraints=[var(theta_iter("Y", 1, 1)).eq(0)], label="d1"))
        d1.add_child(InfluenceNode(
            constraints=[var(theta_iter("Y", 2, 1)).eq(1)],
            mark_vector=True, vector_width=4, label="d2-vec"))
        return tree

    def test_schedules_j_at_dim2(self):
        kernel = running_example(16)
        scheduler, schedule = schedule_with_tree(kernel, self.build_tree())
        assert verify_schedule(schedule, scheduler.validity_relations) == []
        assert schedule.rows["Y"][0].coefficient_of("j") == 0
        assert schedule.rows["Y"][1].coefficient_of("j") == 0
        assert schedule.rows["Y"][2].coefficient_of("j") == 1
        assert schedule.vector_dim() == 2


class TestSiblingFallback:
    def test_infeasible_first_branch_falls_back(self):
        """First branch demands an impossible row (all coefficients zero
        conflicts with progression); the sibling must be taken."""
        kernel = matmul(8)
        tree = InfluenceTree()
        bad = InfluenceNode(
            constraints=[var(theta_iter("S", 0, k)).eq(0) for k in range(3)],
            label="bad")
        good = InfluenceNode(
            constraints=[var(theta_iter("S", 0, 0)).eq(1)], label="good")
        tree.root.add_child(bad)
        tree.root.add_child(good)
        scheduler, schedule = schedule_with_tree(kernel, tree)
        assert scheduler.stats.sibling_fallbacks >= 1
        assert schedule.rows["S"][0].coefficient_of("i") == 1
        assert verify_schedule(schedule, scheduler.validity_relations) == []

    def test_all_branches_infeasible_runs_plain(self):
        kernel = matmul(8)
        tree = InfluenceTree()
        for label in ("bad1", "bad2"):
            tree.root.add_child(InfluenceNode(
                constraints=[var(theta_iter("S", 0, k)).eq(0)
                             for k in range(3)],
                label=label))
        scheduler, schedule = schedule_with_tree(kernel, tree)
        assert scheduler.stats.influence_abandoned
        assert verify_schedule(schedule, scheduler.validity_relations) == []


class TestAncestorBacktrack:
    def test_deep_conflict_backtracks(self):
        """Branch A's depth-1 child conflicts with its depth-0 constraint;
        the scheduler must withdraw dimension 0 and move to branch B."""
        kernel = matmul(8)
        tree = InfluenceTree()
        a = tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("S", 0, 2)).eq(1),
                         var(theta_iter("S", 0, 0)).eq(0),
                         var(theta_iter("S", 0, 1)).eq(0)],
            label="A"))
        # Child requires dim 1 == dim 0's row (linearly dependent: the
        # progression constraints make this infeasible).
        a.add_child(InfluenceNode(
            constraints=[var(theta_iter("S", 1, 2)).eq(1),
                         var(theta_iter("S", 1, 0)).eq(0),
                         var(theta_iter("S", 1, 1)).eq(0)],
            label="A0"))
        b = tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("S", 0, 0)).eq(1)], label="B"))
        b.add_child(InfluenceNode(
            constraints=[var(theta_iter("S", 1, 1)).eq(1)], label="B0"))
        scheduler, schedule = schedule_with_tree(kernel, tree)
        assert scheduler.stats.ancestor_backtracks >= 1
        assert schedule.rows["S"][0].coefficient_of("i") == 1
        assert schedule.rows["S"][1].coefficient_of("j") == 1
        assert verify_schedule(schedule, scheduler.validity_relations) == []


class TestInfluencedVsPlain:
    def test_transpose_innermost_changes(self):
        """On a transpose feeding an add, influence pins the innermost loop
        to the store-contiguous iterator and marks it vector."""
        kernel = transpose_add(16)
        tree = build_influence_tree(kernel)
        scheduler, influenced = schedule_with_tree(kernel, tree)
        assert verify_schedule(influenced, scheduler.validity_relations) == []
        dim = influenced.vector_dim()
        assert dim is not None
        # Both statements write [i][j]: innermost must be j for both.
        for name in ("T", "E"):
            assert influenced.rows[name][dim].coefficient_of("j") == 1
