"""Tests for Hermite normal form and orthogonal complements."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import Matrix, hermite_normal_form, integer_nullspace
from repro.linalg.hermite import (
    lattice_gcd,
    orthogonal_complement,
    orthogonal_complement_or_identity,
    rank,
)


class TestHermite:
    def test_identity_fixed_point(self):
        eye = Matrix.identity(3)
        h, u = hermite_normal_form(eye)
        assert h.rows == eye.rows

    def test_h_equals_u_times_input(self):
        m = Matrix([[2, 4, 4], [-6, 6, 12], [10, -4, -16]])
        h, u = hermite_normal_form(m)
        assert (u @ m).rows == h.rows

    def test_u_unimodular(self):
        m = Matrix([[2, 3], [5, 7]])
        _, u = hermite_normal_form(m)
        assert abs(u.determinant()) == 1

    def test_pivots_positive(self):
        m = Matrix([[-3, 0], [0, -5]])
        h, _ = hermite_normal_form(m)
        nonzero_rows = [row for row in h.rows if any(x != 0 for x in row)]
        for row in nonzero_rows:
            pivot = next(x for x in row if x != 0)
            assert pivot > 0

    def test_rejects_fractions(self):
        with pytest.raises(ValueError):
            hermite_normal_form(Matrix([[Fraction(1, 2)]]))

    @given(st.lists(st.lists(st.integers(-5, 5), min_size=3, max_size=3),
                    min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_hnf_preserves_row_space_rank(self, rows):
        m = Matrix(rows)
        h, u = hermite_normal_form(m)
        assert (u @ m).rows == h.rows
        assert abs(u.determinant()) == 1
        assert Matrix(rows).rank() == h.rank()


class TestOrthogonalComplement:
    def test_complement_is_orthogonal(self):
        rows = [[1, 0, 0], [0, 1, 1]]
        comp = orthogonal_complement(rows)
        for v in comp:
            for r in rows:
                assert sum(a * b for a, b in zip(r, v)) == 0

    def test_complement_dimension(self):
        comp = orthogonal_complement([[1, 1, 1]])
        assert len(comp) == 2

    def test_full_rank_gives_empty(self):
        comp = orthogonal_complement([[1, 0], [0, 1]])
        assert comp == []

    def test_or_identity_empty_rows(self):
        comp = orthogonal_complement_or_identity([], 3)
        assert comp == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_or_identity_zero_rows(self):
        comp = orthogonal_complement_or_identity([[0, 0]], 2)
        assert comp == [[1, 0], [0, 1]]

    def test_or_identity_dim_check(self):
        with pytest.raises(ValueError):
            orthogonal_complement_or_identity([[1, 0, 0]], 2)

    def test_integer_nullspace_primitive(self):
        basis = integer_nullspace(Matrix([[2, 4]]))
        assert basis == [[-2, 1]]

    def test_rank_empty(self):
        assert rank([]) == 0
        assert rank([[0, 0]]) == 0

    def test_rank_simple(self):
        assert rank([[1, 0], [0, 1], [1, 1]]) == 2

    def test_lattice_gcd(self):
        assert lattice_gcd([4, 6]) == 2
        assert lattice_gcd([]) == 0

    @given(st.lists(st.lists(st.integers(-4, 4), min_size=4, max_size=4),
                    min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_complement_spans_rest(self, rows):
        nonzero = [r for r in rows if any(x != 0 for x in r)]
        if not nonzero:
            return
        comp = orthogonal_complement(nonzero)
        # Orthogonality of every basis vector to every input row.
        for v in comp:
            for r in nonzero:
                assert sum(a * b for a, b in zip(r, v)) == 0
        # Dimensions add up: rank(rows) + |complement| == 4.
        assert rank(nonzero) + len(comp) == 4
