"""Tests for the exact two-phase simplex."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import LinearProgram, LPStatus, solve_lp


def lp(obj, a_ub=(), b_ub=(), a_eq=(), b_eq=(), lower=None, upper=None):
    n = len(obj)
    return LinearProgram(
        objective=list(obj),
        a_ub=[list(r) for r in a_ub], b_ub=list(b_ub),
        a_eq=[list(r) for r in a_eq], b_eq=list(b_eq),
        lower=lower if lower is not None else [],
        upper=upper if upper is not None else [],
    )


class TestBasicLP:
    def test_trivial_minimum_at_origin(self):
        result = solve_lp(lp([1, 1]))
        assert result.status is LPStatus.OPTIMAL
        assert result.x == [0, 0]
        assert result.objective == 0

    def test_simple_bounded(self):
        # min -x - y  s.t. x + y <= 4, x <= 3  (x, y >= 0)
        result = solve_lp(lp([-1, -1], a_ub=[[1, 1], [1, 0]], b_ub=[4, 3]))
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == -4

    def test_equality_constraint(self):
        # min x + y s.t. x + 2y == 4
        result = solve_lp(lp([1, 1], a_eq=[[1, 2]], b_eq=[4]))
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == 2  # y = 2, x = 0

    def test_infeasible(self):
        # x >= 0 and x <= -1
        result = solve_lp(lp([1], a_ub=[[1]], b_ub=[-1]))
        assert result.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        result = solve_lp(lp([-1]))
        assert result.status is LPStatus.UNBOUNDED

    def test_exact_fractions(self):
        # min -x s.t. 3x <= 1 -> x = 1/3
        result = solve_lp(lp([-1], a_ub=[[3]], b_ub=[1]))
        assert result.x == [Fraction(1, 3)]

    def test_negative_rhs_row(self):
        # -x <= -2 means x >= 2.
        result = solve_lp(lp([1], a_ub=[[-1]], b_ub=[-2]))
        assert result.objective == 2


class TestBounds:
    def test_upper_bound(self):
        result = solve_lp(lp([-1], lower=[Fraction(0)], upper=[Fraction(5)]))
        assert result.objective == -5

    def test_shifted_lower_bound(self):
        result = solve_lp(lp([1], lower=[Fraction(2)], upper=[None]))
        assert result.x == [2]

    def test_negative_lower_bound(self):
        result = solve_lp(lp([1], lower=[Fraction(-3)], upper=[None]))
        assert result.x == [-3]

    def test_free_variable(self):
        # min x s.t. x >= -7 expressed via inequality, variable free.
        result = solve_lp(lp([1], a_ub=[[-1]], b_ub=[7],
                             lower=[None], upper=[None]))
        assert result.x == [-7]

    def test_reflect_only_upper(self):
        result = solve_lp(lp([-1], lower=[None], upper=[Fraction(4)]))
        assert result.objective == -4

    def test_bounds_make_infeasible(self):
        result = solve_lp(lp([1], lower=[Fraction(3)], upper=[Fraction(2)]))
        assert result.status is LPStatus.INFEASIBLE


class TestValidation:
    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            lp([1, 2], a_ub=[[1]], b_ub=[0])

    def test_rhs_length_mismatch(self):
        with pytest.raises(ValueError):
            lp([1], a_ub=[[1]], b_ub=[0, 1])

    def test_bounds_length_mismatch(self):
        with pytest.raises(ValueError):
            lp([1, 2], lower=[Fraction(0)], upper=[None, None])


class TestDegenerate:
    def test_degenerate_no_cycle(self):
        # Classic degenerate vertex; Bland's rule must terminate.
        result = solve_lp(lp(
            [-Fraction(3, 4), 150, -Fraction(1, 50), 6],
            a_ub=[[Fraction(1, 4), -60, -Fraction(1, 25), 9],
                  [Fraction(1, 2), -90, -Fraction(1, 50), 3],
                  [0, 0, 1, 0]],
            b_ub=[0, 0, 1],
        ))
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == -Fraction(1, 20)

    def test_redundant_equalities(self):
        result = solve_lp(lp([1, 1], a_eq=[[1, 1], [2, 2]], b_eq=[2, 4]))
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == 2

    def test_conflicting_equalities(self):
        result = solve_lp(lp([1, 1], a_eq=[[1, 1], [1, 1]], b_eq=[2, 3]))
        assert result.status is LPStatus.INFEASIBLE


@given(
    st.lists(st.integers(-4, 4), min_size=2, max_size=2),
    st.lists(st.lists(st.integers(-3, 3), min_size=2, max_size=2),
             min_size=1, max_size=4),
    st.lists(st.integers(0, 6), min_size=1, max_size=4),
)
@settings(max_examples=80, deadline=None)
def test_lp_optimum_is_feasible_and_no_better_vertex(obj, rows, rhs):
    """Property: a reported optimum satisfies all constraints, and sampled
    feasible grid points never beat it."""
    k = min(len(rows), len(rhs))
    problem = lp(obj, a_ub=rows[:k], b_ub=rhs[:k],
                 lower=[Fraction(0)] * 2, upper=[Fraction(5)] * 2)
    result = solve_lp(problem)
    if any(r < 0 for r in rhs[:k]):
        return  # origin may be infeasible; only the rhs>=0 case is asserted
    assert result.status is LPStatus.OPTIMAL  # box-bounded with feasible origin
    x = result.x
    for row, b in zip(rows[:k], rhs[:k]):
        assert sum(Fraction(a) * v for a, v in zip(row, x)) <= b
    for gx in range(0, 6):
        for gy in range(0, 6):
            if all(row[0] * gx + row[1] * gy <= b
                   for row, b in zip(rows[:k], rhs[:k])):
                assert obj[0] * gx + obj[1] * gy >= result.objective
