"""Tests for named-dimension polyhedra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets import Polyhedron, var


def box(dims, lo, hi):
    """Axis-aligned integer box [lo, hi]^n."""
    cs = []
    for d in dims:
        cs.append(var(d) >= lo)
        cs.append(var(d) <= hi)
    return Polyhedron(dims, cs)


class TestConstruction:
    def test_universe_not_empty(self):
        assert not Polyhedron.universe(["i"]).is_empty()

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(["i", "i"])

    def test_unknown_dim_in_constraint(self):
        with pytest.raises(ValueError):
            Polyhedron(["i"], [var("j") >= 0])

    def test_with_constraints_copies(self):
        p = Polyhedron.universe(["i"])
        q = p.with_constraints([var("i") >= 0])
        assert len(p.constraints) == 0 and len(q.constraints) == 1

    def test_intersect(self):
        p = Polyhedron(["i", "j"], [var("i") >= 0])
        q = Polyhedron(["i"], [var("i") <= 5])
        r = p.intersect(q)
        assert len(r.constraints) == 2

    def test_intersect_dim_mismatch(self):
        p = Polyhedron(["i"])
        q = Polyhedron(["k"], [var("k") >= 0])
        with pytest.raises(ValueError):
            p.intersect(q)

    def test_rename(self):
        p = Polyhedron(["i"], [var("i") >= 3])
        q = p.rename({"i": "x"})
        assert q.dims == ["x"]
        assert q.contains({"x": Fraction(3)})


class TestEmptiness:
    def test_contradiction_empty(self):
        p = Polyhedron(["i"], [var("i") >= 1, var("i") <= 0])
        assert p.is_empty()

    def test_rational_only_gap_empty_integer(self):
        # 1/2 < i < 1 has a rational point but no integer point.
        p = Polyhedron(["i"], [2 * var("i") >= 1, 2 * var("i") <= 1])
        # 2i >= 1 and 2i <= 1 means i = 1/2: rational-feasible, integer-empty.
        assert not p.is_empty(integer=False)
        assert p.is_empty(integer=True)

    def test_box_not_empty(self):
        assert not box(["i", "j"], 0, 4).is_empty()

    def test_contains(self):
        p = box(["i"], 0, 3)
        assert p.contains({"i": Fraction(2)})
        assert not p.contains({"i": Fraction(4)})

    def test_contains_missing_dim(self):
        with pytest.raises(KeyError):
            box(["i"], 0, 1).contains({})

    def test_sample_in_set(self):
        p = box(["i", "j"], 2, 5).with_constraints([var("i") + var("j") >= 9])
        point = p.sample()
        assert point is not None
        assert p.contains(point)

    def test_sample_empty(self):
        p = Polyhedron(["i"], [var("i") >= 1, var("i") <= 0])
        assert p.sample() is None


class TestElimination:
    def test_fm_triangle(self):
        # 0 <= i <= j <= 9: eliminating j leaves 0 <= i <= 9.
        p = Polyhedron(["i", "j"], [var("i") >= 0, var("j") - var("i") >= 0,
                                    var("j") <= 9])
        q = p.eliminate("j")
        assert q.dims == ["i"]
        assert q.contains({"i": Fraction(9)})
        assert not q.contains({"i": Fraction(10)})

    def test_eliminate_unknown_dim(self):
        with pytest.raises(ValueError):
            Polyhedron(["i"]).eliminate("z")

    def test_equality_substitution(self):
        # j == i + 1, 0 <= j <= 5  ->  -1 <= i <= 4.
        p = Polyhedron(["i", "j"], [(var("j") - var("i") - 1).eq(0),
                                    var("j") >= 0, var("j") <= 5])
        q = p.eliminate("j")
        assert q.contains({"i": Fraction(-1)})
        assert q.contains({"i": Fraction(4)})
        assert not q.contains({"i": Fraction(5)})

    def test_eliminate_all(self):
        p = box(["i", "j", "k"], 0, 3)
        q = p.eliminate_all(["k", "j"])
        assert q.dims == ["i"]
        assert not q.is_empty()

    def test_emptiness_preserved_by_projection(self):
        p = Polyhedron(["i", "j"], [var("i") + var("j") >= 10,
                                    var("i") <= 2, var("j") <= 2])
        assert p.is_empty()
        assert p.eliminate("j").is_empty()

    def test_bounds_of(self):
        p = Polyhedron(["i", "N"], [var("i") >= 0,
                                    var("N") - var("i") - 1 >= 0])
        lowers, uppers = p.bounds_of("i")
        assert len(lowers) == 1 and len(uppers) == 1
        assert lowers[0].const == 0 and lowers[0].coeffs == {}
        assert uppers[0].coeffs == {"N": Fraction(1)}
        assert uppers[0].const == -1


@given(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3),
       st.integers(-3, 3), st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_fm_projection_is_shadow(a, b, c, d, bound):
    """Property: a point is in the projection iff some integer witness for
    the eliminated dim exists in a small window (soundness direction)."""
    # Set: a*i + b*j >= c, d <= j <= d + bound, -5 <= i <= 5.
    p = Polyhedron(["i", "j"], [
        a * var("i") + b * var("j") >= c,
        var("j") >= d, var("j") <= d + bound,
        var("i") >= -5, var("i") <= 5,
    ])
    q = p.eliminate("j")
    for i in range(-5, 6):
        witness = any(
            p.contains({"i": Fraction(i), "j": Fraction(j)})
            for j in range(d, d + bound + 1))
        if witness:
            assert q.contains({"i": Fraction(i)})
