"""Tests for the command line interface."""

import pytest

from repro.cli import main

KERNEL_TEXT = """
kernel cli_demo (M=64, N=16)
tensor A[M][N]
tensor B[M][N]
S[i: 0..M, j: 0..N]: B[i][j] = f(A[i][j])
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "op.kdl"
    path.write_text(KERNEL_TEXT)
    return str(path)


class TestCompile:
    def test_compile_default(self, kernel_file, capsys):
        assert main(["compile", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "variant infl" in out
        assert "forall" in out

    def test_compile_all_variants_measured(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--all-variants",
                     "--measure", "--sample-blocks", "2"]) == 0
        out = capsys.readouterr().out
        for variant in ("isl", "tvm", "novec", "infl"):
            assert f"variant {variant}" in out
        assert "modelled time" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/op.kdl"]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.kdl"
        bad.write_text("kernel k (N=4)\nbroken")
        assert main(["compile", str(bad)]) == 2
        assert "parse error" in capsys.readouterr().err


class TestScenarios:
    def test_scenarios_output(self, kernel_file, capsys):
        assert main(["scenarios", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "Influenced dimension scenarios" in out
        assert "Influence constraint tree" in out


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "BERT" in capsys.readouterr().out

    def test_table2_subset(self, capsys):
        assert main(["table2", "--networks", "LSTM", "--limit", "2",
                     "--sample-blocks", "2"]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "geomean" in out

    def test_table2_unknown_network(self, capsys):
        assert main(["table2", "--networks", "AlexNet"]) == 2
