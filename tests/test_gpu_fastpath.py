"""The fast simulator backend: bitwise parity, fallback, selection, and
the content-keyed profile cache.

Parity is the whole contract: the ``fast`` backend must produce a
:class:`KernelProfile` whose counters are *bitwise identical* to the
reference interpreter's on every launch — including the order-sensitive
cache-hierarchy counters (``dram_writes`` depends on raw-``set``
iteration order inside :func:`repro.gpu.memory.warp_access`).
"""

import copy
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.backend import (
    DEFAULT_SIMULATOR,
    available_simulators,
    resolve_simulator,
)
from repro.gpu.profile_cache import (
    ProfileCache,
    get_profile_cache,
    use_profile_cache,
)
from repro.gpu.simulator import simulate_kernel
from repro.ir.kparser import parse_kernel
from repro.obs import MetricsRegistry, Obs, use_obs
from repro.pipeline.akg import VARIANTS, AkgPipeline
from repro.solver.problem import LinExpr
from repro.workloads import operators
from repro.workloads.generator import generate_network_suite

from tests.test_gpu_simulator import compile_mapped, copy_kernel

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _parity(mapped, sample_blocks=4, arch=None):
    """Assert fast == reference counters; return the fast profile."""
    kwargs = {"sample_blocks": sample_blocks}
    if arch is not None:
        kwargs["arch"] = arch
    fast = simulate_kernel(mapped, sim="fast", **kwargs)
    reference = simulate_kernel(mapped, sim="reference", **kwargs)
    assert fast.counters() == reference.counters()
    return fast


ZOO = {
    "copy": lambda: copy_kernel(64, 96),
    "transpose": lambda: operators.transpose2d_op("fp_tr", 96, 64),
    "reduce": lambda: operators.reduce_producer_op("fp_red", 128, 8),
    "softmax": lambda: operators.softmax_like_op("fp_sm", 64, 32),
    "broadcast": lambda: operators.broadcast_bias_op("fp_bb"),
    "strided_pool": lambda: operators.strided_pool_op("fp_sp"),
    "layout4d": lambda: operators.layout_conversion_op("fp_lc", 2, 16, 8, 8),
}


class TestParity:
    @pytest.mark.parametrize("influenced", [False, True])
    @pytest.mark.parametrize("family", list(ZOO))
    def test_operator_zoo(self, family, influenced):
        mapped = compile_mapped(ZOO[family](), influenced=influenced)
        _parity(mapped)

    def test_without_vectorization(self):
        mapped = compile_mapped(operators.transpose2d_op("fp_nv", 64, 64),
                                influenced=True, enable_vec=False)
        _parity(mapped)

    def test_partial_warps(self):
        # 48 threads/block: one full warp plus a 16-lane partial warp.
        for influenced in (False, True):
            mapped = compile_mapped(copy_kernel(64, 96),
                                    influenced=influenced, max_threads=48)
            assert mapped.n_threads_per_block % 32 != 0
            _parity(mapped)

    def test_odd_extents(self):
        # Odd trip counts exercise trailing guards and masked lanes.
        _parity(compile_mapped(copy_kernel(63, 37)))
        _parity(compile_mapped(operators.transpose2d_op("fp_odd", 61, 43),
                               influenced=True))

    def test_network_suite_all_variants(self):
        pipeline = AkgPipeline(sample_blocks=2, max_threads=64)
        for _, kernel in generate_network_suite("LSTM", seed=0, limit=2):
            for variant in VARIANTS:
                compiled = pipeline.compile(kernel, variant)
                for launch in compiled.launches:
                    _parity(launch, sample_blocks=2)

    def test_corpus_replay(self):
        """Every committed fuzz reproducer stays backend-invariant."""
        names = sorted(n for n in os.listdir(CORPUS_DIR)
                       if n.endswith(".kernel"))
        assert names, "corpus must not be empty"
        pipeline = AkgPipeline(sample_blocks=2, max_threads=64)
        for name in names:
            with open(os.path.join(CORPUS_DIR, name)) as handle:
                kernel_text = handle.read()
            for variant in ("isl", "infl"):
                kernel = parse_kernel(kernel_text)
                compiled = pipeline.compile(kernel, variant)
                for launch in compiled.launches:
                    _parity(launch, sample_blocks=2)

    def test_repeated_simulation_stays_identical(self):
        """Warm per-kernel signature caches must not drift the counters."""
        mapped = compile_mapped(operators.transpose2d_op("fp_rep", 64, 64))
        first = simulate_kernel(mapped, sample_blocks=4, sim="fast")
        for _ in range(3):
            again = simulate_kernel(mapped, sample_blocks=4, sim="fast")
            assert again.counters() == first.counters()

    @given(rows=st.integers(3, 80), cols=st.integers(3, 80),
           max_threads=st.sampled_from([32, 48, 64]),
           influenced=st.booleans(), enable_vec=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_property(self, rows, cols, max_threads, influenced, enable_vec):
        mapped = compile_mapped(copy_kernel(rows, cols),
                                influenced=influenced,
                                enable_vec=enable_vec,
                                max_threads=max_threads)
        _parity(mapped, sample_blocks=2)


def _lane_variant_mutant():
    """A mapped kernel whose block-mapped loop lower bound carries a
    thread-variable coefficient — lane-variant, outside the fast model."""
    mapped = compile_mapped(copy_kernel(64, 64), max_threads=64)
    mutant = copy.deepcopy(mapped)
    thread_var = mutant.block[0].loop_var
    from repro.codegen.ast import Loop, walk
    for node in walk(mutant.ast):
        if isinstance(node, Loop) and node.mapping \
                and node.mapping.startswith("blockIdx"):
            node.lowers = [LinExpr({thread_var: 1})]
            return mutant
    raise AssertionError("no block-mapped loop found")


class TestFallback:
    def test_lane_variant_mapped_lower_falls_back(self):
        mutant = _lane_variant_mutant()
        obs = Obs(metrics=MetricsRegistry())
        with use_obs(obs):
            fast = simulate_kernel(mutant, sample_blocks=4, sim="fast")
        reference = simulate_kernel(copy.deepcopy(mutant), sample_blocks=4,
                                    sim="reference")
        assert fast.counters() == reference.counters()
        assert obs.metrics.counters["sim.fastpath.fallback"] == 1
        # A fallen-back launch reports no fast-path work.
        assert "sim.fastpath.memo_hits" not in obs.metrics.counters

    def test_supported_launch_reports_fastpath_counters(self):
        mapped = compile_mapped(operators.transpose2d_op("fp_ctr", 96, 96))
        obs = Obs(metrics=MetricsRegistry())
        with use_obs(obs):
            simulate_kernel(mapped, sample_blocks=4, sim="fast")
        counters = obs.metrics.counters
        assert counters.get("sim.fastpath.memo_hits", 0) > 0
        assert counters.get("sim.fastpath.analytic", 0) > 0
        assert "sim.fastpath.fallback" not in counters

    def test_reference_backend_reports_none(self):
        mapped = compile_mapped(copy_kernel(32, 32))
        obs = Obs(metrics=MetricsRegistry())
        with use_obs(obs):
            simulate_kernel(mapped, sample_blocks=2, sim="reference")
        assert not any(name.startswith("sim.fastpath.")
                       for name in obs.metrics.counters)


class TestSelection:
    def test_registry_lists_both(self):
        assert {"fast", "reference"} <= set(available_simulators())
        assert DEFAULT_SIMULATOR == "fast"

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM", "fast")
        assert resolve_simulator("reference").name == "reference"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM", "reference")
        assert resolve_simulator().name == "reference"
        assert resolve_simulator("").name == "reference"
        monkeypatch.delenv("REPRO_SIM")
        assert resolve_simulator().name == DEFAULT_SIMULATOR

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown simulator"):
            resolve_simulator("bogus")

    def test_pipeline_threads_choice_through(self):
        from repro.schedule.scheduler import SchedulerOptions
        assert AkgPipeline(sim="reference").sim == "reference"
        options = SchedulerOptions(sim="reference")
        assert AkgPipeline(scheduler_options=options).sim == "reference"
        # Explicit argument beats the options field.
        assert AkgPipeline(scheduler_options=options, sim="fast").sim == "fast"

    def test_cli_accepts_sim(self):
        from repro.cli import build_arg_parser, main
        args = build_arg_parser().parse_args(
            ["compile", "x.k", "--sim", "reference"])
        assert args.sim == "reference"
        # An unknown backend fails fast (before the file is even opened).
        assert main(["compile", "missing.k", "--sim", "bogus"]) == 2


class TestProfileCache:
    def test_renamed_identical_kernel_hits(self):
        first = compile_mapped(copy_kernel(64, 64))
        second = compile_mapped(copy_kernel(64, 64))
        second.kernel.name = "copy_renamed"
        cache = ProfileCache()
        with use_profile_cache(cache):
            a = simulate_kernel(first, sample_blocks=2)
            b = simulate_kernel(second, sample_blocks=2)
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        # The replayed profile carries the requester's name, same counters.
        assert b.name == "copy_renamed"
        assert a.name == first.kernel.name
        assert {k: v for k, v in a.counters().items()} == b.counters()

    def test_different_content_misses(self):
        cache = ProfileCache()
        with use_profile_cache(cache):
            simulate_kernel(compile_mapped(copy_kernel(64, 64)),
                            sample_blocks=2)
            simulate_kernel(compile_mapped(copy_kernel(64, 96)),
                            sample_blocks=2)
            # Same content, different sampling width: a distinct key.
            simulate_kernel(compile_mapped(copy_kernel(64, 64)),
                            sample_blocks=4)
        assert cache.hits == 0 and cache.misses == 3

    def test_scope_is_explicit(self):
        assert get_profile_cache() is None
        with use_profile_cache(ProfileCache()) as cache:
            assert get_profile_cache() is cache
        assert get_profile_cache() is None

    def test_metrics_stream(self):
        obs = Obs(metrics=MetricsRegistry())
        mapped = compile_mapped(copy_kernel(64, 64))
        with use_obs(obs), use_profile_cache(ProfileCache()):
            simulate_kernel(mapped, sample_blocks=2)
            simulate_kernel(mapped, sample_blocks=2)
        assert obs.metrics.counters["sim.profile_cache.misses"] == 1
        assert obs.metrics.counters["sim.profile_cache.hits"] == 1

    def test_no_metrics_without_cache(self):
        obs = Obs(metrics=MetricsRegistry())
        with use_obs(obs):
            simulate_kernel(compile_mapped(copy_kernel(32, 32)),
                            sample_blocks=2)
        assert not any(name.startswith("sim.profile_cache.")
                       for name in obs.metrics.counters)

    def test_compile_and_measure_installs_per_call_scope(self):
        """Without an ambient cache the pipeline installs one per call —
        and it must not outlive the call (cross-call hits would make
        serial and parallel evaluation metrics diverge)."""
        pipeline = AkgPipeline(sample_blocks=2, max_threads=64)
        kernel = operators.transpose2d_op("fp_cm", 63, 33)
        pipeline.compile_and_measure(kernel, "isl")
        counters = pipeline.context.counters
        assert counters.get("sim.profile_cache.misses", 0) > 0
        pipeline.compile_and_measure(kernel, "isl")
        assert pipeline.context.counters.get("sim.profile_cache.hits", 0) == 0

    def test_operator_scope_hits_across_variants(self):
        """The evaluation runner's per-operator scope: with odd extents
        vectorization cannot fire, the `novec` and `infl` variants lower
        to the same mapped kernel, and the second one replays."""
        pipeline = AkgPipeline(sample_blocks=2, max_threads=64)
        kernel = operators.transpose2d_op("fp_scope", 63, 33)
        with use_profile_cache(ProfileCache()) as cache:
            a = pipeline.compile_and_measure(kernel, "novec")
            b = pipeline.compile_and_measure(kernel, "infl")
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        assert [p.counters() for p in a.profiles] \
            == [p.counters() for p in b.profiles]

    def test_lru_bound(self):
        cache = ProfileCache(max_entries=2)
        for index in range(3):
            cache.store(("key", index), index)
        assert len(cache) == 2
        assert cache.lookup(("key", 0)) is not None  # evicted -> miss
        assert cache.misses == 1
