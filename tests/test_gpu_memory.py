"""Tests for the sector cache hierarchy and warp access model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import MemoryHierarchy, SectorCache, warp_access


def hierarchy(l1=1024, l2=8192, sector=32):
    return MemoryHierarchy(l1, l2, sector)


class TestSectorCache:
    def test_load_miss_then_hit(self):
        c = SectorCache(1024, 32)
        hit, _ = c.load(5)
        assert not hit
        hit, _ = c.load(5)
        assert hit

    def test_lru_eviction(self):
        c = SectorCache(2 * 32, 32)  # capacity: 2 sectors
        c.load(1)
        c.load(2)
        c.load(3)  # evicts 1
        hit, _ = c.load(1)
        assert not hit

    def test_dirty_eviction_reported(self):
        c = SectorCache(2 * 32, 32)
        assert c.store(1) is None
        assert c.store(2) is None
        evicted = c.store(3)  # evicts dirty sector 1
        assert evicted == 1

    def test_clean_eviction_not_reported(self):
        c = SectorCache(2 * 32, 32)
        c.load(1)
        c.load(2)
        _, evicted = c.load(3)
        assert evicted is None

    def test_flush_returns_dirty(self):
        c = SectorCache(1024, 32)
        c.store(7)
        c.load(8)
        assert c.flush() == [7]
        assert c.flush() == []  # now clean

    def test_store_marks_existing_dirty(self):
        c = SectorCache(1024, 32)
        c.load(3)
        c.store(3)
        assert c.flush() == [3]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SectorCache(0, 32)


class TestMemoryHierarchy:
    def test_load_counts_dram_once(self):
        m = hierarchy()
        m.load_sector(1)
        m.load_sector(1)
        assert m.dram_reads == 1

    def test_l2_backs_l1(self):
        m = hierarchy(l1=2 * 32)  # tiny L1: 2 sectors
        m.load_sector(1)
        m.load_sector(2)
        m.load_sector(3)  # 1 evicted from L1, still in L2
        m.load_sector(1)
        assert m.dram_reads == 3  # the re-load of 1 hits L2

    def test_store_combining(self):
        """Repeated stores to one sector cost one write-back (accumulators)."""
        m = hierarchy()
        for _ in range(100):
            m.store_sector(9)
        m.end_kernel()
        assert m.dram_writes == 1

    def test_scattered_stores_all_written(self):
        m = hierarchy()
        for s in range(50):
            m.store_sector(s)
        m.end_kernel()
        assert m.dram_writes == 50

    def test_store_then_load_forwards(self):
        """A load after a store to the same sector must not touch DRAM."""
        m = hierarchy()
        m.store_sector(4)
        m.load_sector(4)
        assert m.dram_reads == 0

    def test_end_block_spills_to_l2_not_dram(self):
        m = hierarchy()
        m.store_sector(4)
        m.end_block()
        assert m.dram_writes == 0
        m.end_kernel()
        assert m.dram_writes == 1

    def test_capacity_pressure_writes_back(self):
        m = hierarchy(l1=32, l2=2 * 32)
        m.store_sector(1)
        m.end_block()
        m.store_sector(2)
        m.end_block()
        m.store_sector(3)  # L2 overflows: dirty eviction
        m.end_block()
        m.end_kernel()
        assert m.dram_writes == 3  # every dirty sector eventually lands


class TestWarpAccess:
    def test_coalesced_load(self):
        m = hierarchy()
        # 32 lanes x 4B consecutive = 128 bytes = 4 sectors.
        ranges = [(lane * 4, 4) for lane in range(32)]
        result = warp_access(m, ranges, is_write=False)
        assert result.sectors_touched == 4
        assert m.dram_reads == 4
        assert result.bytes_requested == 128

    def test_strided_load(self):
        m = hierarchy(l2=100 * 32)
        ranges = [(lane * 256, 4) for lane in range(32)]
        result = warp_access(m, ranges, is_write=False)
        assert result.sectors_touched == 32

    def test_vector_access_counts_lane_width(self):
        m = hierarchy()
        # 8 lanes x 16B consecutive = 4 sectors.
        ranges = [(lane * 16, 16) for lane in range(8)]
        result = warp_access(m, ranges, is_write=False)
        assert result.sectors_touched == 4
        assert result.bytes_requested == 128

    def test_broadcast_single_sector(self):
        m = hierarchy()
        ranges = [(64, 4)] * 32
        result = warp_access(m, ranges, is_write=False)
        assert result.sectors_touched == 1

    def test_write_transactions_deferred(self):
        m = hierarchy()
        ranges = [(lane * 4, 4) for lane in range(32)]
        warp_access(m, ranges, is_write=True)
        assert m.dram_writes == 0
        m.end_kernel()
        assert m.dram_writes == 4

    def test_zero_byte_rejected(self):
        with pytest.raises(ValueError):
            warp_access(hierarchy(), [(0, 0)], False)


@given(st.lists(st.integers(0, 500), min_size=1, max_size=200),
       st.integers(2, 16))
@settings(max_examples=50, deadline=None)
def test_writeback_bounds(sectors, capacity):
    """Property: write-backs are bounded below by the distinct dirty
    sectors and above by the total number of stores (a sector evicted
    dirty and re-dirtied later writes back again)."""
    m = MemoryHierarchy(capacity * 32, capacity * 64, 32)
    for s in sectors:
        m.store_sector(s)
    m.end_kernel()
    assert len(set(sectors)) <= m.dram_writes <= len(sectors)


@given(st.lists(st.integers(0, 500), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_writeback_exact_without_pressure(sectors):
    """Without capacity pressure every distinct sector writes back once."""
    m = MemoryHierarchy(1024 * 32, 1024 * 32, 32)
    for s in sectors:
        m.store_sector(s)
    m.end_kernel()
    assert m.dram_writes == len(set(sectors))
