"""Tests for the program IR: types, tensors, accesses, statements, kernels."""

from fractions import Fraction

import pytest

from repro.ir import (
    Access,
    DType,
    FLOAT16,
    FLOAT32,
    FLOAT64,
    INT8,
    Kernel,
    Tensor,
    parse_affine,
)
from repro.ir.examples import elementwise_chain, matmul, running_example, transpose_add
from repro.solver.problem import LinExpr


class TestDType:
    def test_sizes(self):
        assert FLOAT32.size_bytes == 4
        assert FLOAT64.size_bytes == 8

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DType("weird", 3)

    def test_vector_widths_float32(self):
        # float2 = 64 bits, float4 = 128 bits.
        assert FLOAT32.vector_widths() == [2, 4]

    def test_vector_widths_float64(self):
        # double2 = 128 bits; double4 would be 256.
        assert FLOAT64.vector_widths() == [2]

    def test_vector_widths_float16(self):
        # half4 = 64 bits; half2 is only 32 bits (below the 64-bit rule).
        assert FLOAT16.vector_widths() == [4]

    def test_vector_widths_int8(self):
        assert INT8.vector_widths() == []


class TestTensor:
    def test_strides_row_major(self):
        t = Tensor("D", (5, 7, 3))
        assert t.strides() == (21, 3, 1)

    def test_n_bytes(self):
        t = Tensor("A", (4, 4), FLOAT64)
        assert t.n_bytes == 128

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            Tensor("A", (0, 4))

    def test_bad_name(self):
        with pytest.raises(ValueError):
            Tensor("2bad", (4,))


class TestParseAffine:
    def test_single_var(self):
        assert parse_affine("i").coeffs == {"i": Fraction(1)}

    def test_sum(self):
        e = parse_affine("i + j - 2")
        assert e.coeffs == {"i": Fraction(1), "j": Fraction(1)}
        assert e.const == -2

    def test_scaled(self):
        assert parse_affine("2*i").coeffs == {"i": Fraction(2)}
        assert parse_affine("i*3").coeffs == {"i": Fraction(3)}

    def test_negative_leading(self):
        e = parse_affine("-i + 1")
        assert e.coeffs == {"i": Fraction(-1)} and e.const == 1

    def test_constant(self):
        e = parse_affine("42")
        assert e.is_constant() and e.const == 42

    def test_bad_token(self):
        with pytest.raises(ValueError):
            parse_affine("i @ j")

    def test_dangling_operator(self):
        with pytest.raises(ValueError):
            parse_affine("i +")

    def test_nonaffine_rejected(self):
        with pytest.raises(ValueError):
            parse_affine("i * j")


class TestAccess:
    def make(self):
        t = Tensor("D", (8, 8, 8))
        return Access.build(t, ["k", "i", "j"])

    def test_arity_check(self):
        t = Tensor("A", (4, 4))
        with pytest.raises(ValueError):
            Access.build(t, ["i"])

    def test_variables(self):
        assert self.make().variables() == {"k", "i", "j"}

    def test_stride_innermost(self):
        a = self.make()
        assert a.stride_along("j") == 1

    def test_stride_middle(self):
        assert self.make().stride_along("i") == 8

    def test_stride_outer_subscript(self):
        # k indexes the outermost dim of an 8x8x8 tensor: stride 64.
        assert self.make().stride_along("k") == 64

    def test_stride_invariant(self):
        assert self.make().stride_along("z") == 0

    def test_linearized(self):
        a = self.make()
        point = {"k": Fraction(1), "i": Fraction(2), "j": Fraction(3)}
        assert a.linearized(point) == 64 + 16 + 3

    def test_byte_address(self):
        a = self.make()
        point = {"k": Fraction(0), "i": Fraction(0), "j": Fraction(2)}
        assert a.byte_address(point, base=100) == 100 + 2 * 4

    def test_constant_subscript(self):
        t = Tensor("A", (4, 4))
        a = Access.build(t, [0, "i"])
        assert a.stride_along("i") == 1
        assert a.linearized({"i": Fraction(3)}) == 3


class TestKernel:
    def test_running_example_shape(self):
        k = running_example(8)
        assert [s.name for s in k.statements] == ["X", "Y"]
        assert k.statement("Y").depth == 3

    def test_betas_default_sequence(self):
        k = running_example(8)
        assert k.statement("X").betas == [0, 0, 0]
        assert k.statement("Y").betas == [1, 0, 0, 0]

    def test_duplicate_statement_rejected(self):
        k = Kernel("k", params={"N": 4})
        k.add_tensor("A", (4,))
        k.add_statement("S", [("i", 0, "N")], writes=[("A", ["i"])])
        with pytest.raises(ValueError):
            k.add_statement("S", [("i", 0, "N")], writes=[("A", ["i"])])

    def test_unknown_tensor_rejected(self):
        k = Kernel("k", params={"N": 4})
        with pytest.raises(KeyError):
            k.add_statement("S", [("i", 0, "N")], writes=[("Z", ["i"])])

    def test_unknown_name_in_subscript(self):
        k = Kernel("k", params={"N": 4})
        k.add_tensor("A", (4,))
        with pytest.raises(ValueError):
            k.add_statement("S", [("i", 0, "N")], writes=[("A", ["q"])])

    def test_statement_must_write(self):
        k = Kernel("k", params={"N": 4})
        k.add_tensor("A", (4,))
        with pytest.raises(ValueError):
            k.add_statement("S", [("i", 0, "N")], writes=[])

    def test_bad_param_value(self):
        with pytest.raises(ValueError):
            Kernel("k", params={"N": 0})

    def test_total_bytes_touched(self):
        k = transpose_add(4)
        # A, B, C are each 4x4 float32 = 64 bytes.
        assert k.total_bytes_touched() == 3 * 64

    def test_validate_ok(self):
        for k in (running_example(4), matmul(4), elementwise_chain(4),
                  transpose_add(4)):
            k.validate()

    def test_iteration_points_count(self):
        k = running_example(3)
        assert len(k.statement("X").iteration_points(k.params)) == 9
        assert len(k.statement("Y").iteration_points(k.params)) == 27

    def test_iteration_points_in_domain(self):
        k = running_example(3)
        s = k.statement("X")
        for point in s.iteration_points(k.params):
            full = dict(point)
            full["N"] = Fraction(3)
            assert s.domain.contains(full)

    def test_triangular_domain(self):
        k = Kernel("tri", params={"N": 4})
        k.add_tensor("A", (4, 4))
        s = k.add_statement("S", [("i", 0, "N"), ("j", 0, "i + 1")],
                            writes=[("A", ["i", "j"])])
        points = s.iteration_points(k.params)
        assert len(points) == 4 + 3 + 2 + 1

    def test_original_date_interleaving(self):
        k = running_example(4)
        x = k.statement("X")
        date = x.original_date({"i": Fraction(2), "k": Fraction(1)})
        assert date == (0, 2, 0, 1, 0)

    def test_statement_lookup_error(self):
        with pytest.raises(KeyError):
            running_example(4).statement("Z")
