"""Operator families through the full pipeline, parametrized per family.

Each family with qualitatively new dependence structure — 1D/2D stencils
(shifted accesses), depthwise convolution (windowed reuse per channel) and
attention blocks (reduce -> broadcast -> reduce chains) — is checked for:

* dependence analysis finds the family's characteristic flow relations,
* the influenced scheduler produces a verifiably valid schedule,
* every pipeline variant compiles to a semantics-preserving AST,
* the fast and reference simulator backends agree bitwise on every
  launch's profile counters.
"""

import pytest

from repro.codegen.interp import check_semantics
from repro.deps import compute_dependences
from repro.gpu import simulate_kernel
from repro.ir.examples import heat_2d, jacobi_1d, jacobi_2d
from repro.pipeline import AkgPipeline, VARIANTS
from repro.schedule import InfluencedScheduler
from repro.schedule.analysis import verify_schedule
from repro.workloads.operators import attention_block_op, depthwise_conv_op

# family -> (builder, writer statement, expected flow relations out of it).
FAMILIES = {
    "jacobi_1d": (lambda: jacobi_1d(12), "S1", 3),
    "jacobi_2d": (lambda: jacobi_2d(8), "S1", 5),
    "heat_2d": (lambda: heat_2d(8), "Step1", 1),
    "depthwise_conv": (lambda: depthwise_conv_op(
        "dw", channels=2, height=4, width=4, kernel_size=2), "Scale", 1),
    # Score's flows: its own carried accumulator, RowMax, and Exp.
    "attention_block": (lambda: attention_block_op(
        "attn", seq=4, dmodel=4), "Score", 3),
}


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def family(request):
    builder, producer, n_flows = FAMILIES[request.param]
    return request.param, builder(), producer, n_flows


class TestOperatorFamilies:
    def test_flow_dependences_found(self, family):
        name, kernel, producer, expected = family
        relations = compute_dependences(kernel)
        flows = [r for r in relations
                 if r.kind == "flow" and r.source.name == producer]
        assert len(flows) == expected

    def test_schedule_valid(self, family):
        _, kernel, _, _ = family
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        assert verify_schedule(schedule, scheduler.validity_relations) == []

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_all_variants_semantics(self, family, variant):
        _, kernel, _, _ = family
        pipe = AkgPipeline(sample_blocks=2)
        compiled = pipe.compile(kernel, variant)
        for launch in compiled.launches:
            assert check_semantics(launch.kernel, launch.ast) == []

    def test_fast_reference_simulator_parity(self, family):
        _, kernel, _, _ = family
        pipe = AkgPipeline(sample_blocks=2)
        compiled = pipe.compile(kernel, "infl")
        for launch in compiled.launches:
            fast = simulate_kernel(launch, sample_blocks=2, sim="fast")
            reference = simulate_kernel(launch, sample_blocks=2,
                                        sim="reference")
            assert fast.counters() == reference.counters()

    def test_measured(self, family):
        _, kernel, _, _ = family
        pipe = AkgPipeline(sample_blocks=2)
        timing = pipe.compile_and_measure(kernel, "infl")
        assert timing.time > 0


class TestJacobiOrdering:
    """The 1D shifted-read ordering argument, kept from the original suite."""

    def test_neighbour_shift_blocks_fusion_at_same_date(self):
        kernel = jacobi_1d(12)
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        s1 = schedule.date_of("S1", {"i": 5}, kernel.params)
        s2 = schedule.date_of("S2", {"i": 4}, kernel.params)
        # S1(5) produces B[5]; S2(4) reads B[5]: order must hold.
        assert s1 < s2

    def test_2d_neighbour_shift_ordering(self):
        kernel = jacobi_2d(8)
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        s1 = schedule.date_of("S1", {"i": 3, "j": 3}, kernel.params)
        s2 = schedule.date_of("S2", {"i": 2, "j": 3}, kernel.params)
        # S1(3,3) produces B[3][3]; S2(2,3) reads B[3][3].
        assert s1 < s2
