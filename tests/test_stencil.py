"""Stencil kernels through the full pipeline (shifted accesses)."""

import pytest

from repro.codegen.interp import check_semantics
from repro.deps import compute_dependences
from repro.ir.examples import jacobi_1d
from repro.pipeline import AkgPipeline, VARIANTS
from repro.schedule import InfluencedScheduler
from repro.schedule.analysis import verify_schedule


class TestJacobi:
    @pytest.fixture(scope="class")
    def kernel(self):
        return jacobi_1d(12)

    def test_shifted_dependences_found(self, kernel):
        relations = compute_dependences(kernel)
        flows = [r for r in relations
                 if r.kind == "flow" and r.source.name == "S1"]
        # B[i] feeds B[i-1], B[i], B[i+1] readers: three distinct flow
        # relations survive emptiness checking.
        assert len(flows) == 3

    def test_schedule_valid(self, kernel):
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        assert verify_schedule(schedule, scheduler.validity_relations) == []

    def test_neighbour_shift_blocks_fusion_at_same_date(self, kernel):
        """S2 reads B[i+1], so fusing both statements at identical dates is
        invalid; the scheduler must separate them (scalar dim or shift)."""
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        s1 = schedule.date_of("S1", {"i": 5}, kernel.params)
        s2 = schedule.date_of("S2", {"i": 4}, kernel.params)
        # S1(5) produces B[5]; S2(4) reads B[5]: order must hold.
        assert s1 < s2

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_all_variants_semantics(self, kernel, variant):
        pipe = AkgPipeline(sample_blocks=2)
        compiled = pipe.compile(kernel, variant)
        for launch in compiled.launches:
            assert check_semantics(launch.kernel, launch.ast) == []

    def test_measured(self, kernel):
        pipe = AkgPipeline(sample_blocks=2)
        timing = pipe.compile_and_measure(kernel, "infl")
        assert timing.time > 0
