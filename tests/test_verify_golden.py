"""Golden snapshot engine: build, round-trip, tamper detection, and the
committed-golden anchor for one Table II network."""

import json

import pytest

from repro.pipeline.akg import AkgPipeline
from repro.verify.snapshot import (
    GOLDEN_FAMILIES,
    GOLDEN_VERSION,
    GoldenConfig,
    build_family_golden,
    build_network_golden,
    compare_goldens,
    golden_path,
    load_golden,
    write_golden,
)

TINY = GoldenConfig(limit=1, sample_blocks=1)


@pytest.fixture(scope="module")
def lstm_golden():
    return build_network_golden("LSTM", TINY)


class TestBuild:
    def test_document_shape(self, lstm_golden):
        assert lstm_golden["version"] == GOLDEN_VERSION
        assert lstm_golden["network"] == "LSTM"
        assert lstm_golden["config"] == TINY.as_dict()
        assert lstm_golden["operators"]
        for entry in lstm_golden["operators"].values():
            assert set(entry["variants"]) == {"isl", "infl"}
            for snapshot in entry["variants"].values():
                assert snapshot["launches"]
                for launch in snapshot["launches"]:
                    assert launch["schedule"]["statements"]
                    assert launch["ast"]
                    assert launch["profile"]["flops"] > 0

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="unknown network"):
            build_network_golden("AlexNet", TINY)

    def test_build_is_deterministic(self, lstm_golden):
        again = build_network_golden("LSTM", TINY)
        assert compare_goldens(lstm_golden, again) == []


class TestFileRoundTrip:
    def test_write_then_load(self, lstm_golden, tmp_path):
        path = write_golden(lstm_golden, str(tmp_path))
        assert path == golden_path("LSTM", str(tmp_path))
        loaded = load_golden("LSTM", str(tmp_path))
        assert loaded == json.loads(json.dumps(lstm_golden))

    def test_missing_golden_loads_as_none(self, tmp_path):
        assert load_golden("LSTM", str(tmp_path)) is None

    def test_unsupported_version_rejected(self, lstm_golden, tmp_path):
        doc = dict(lstm_golden, version=GOLDEN_VERSION + 1)
        path = golden_path("LSTM", str(tmp_path))
        with open(path, "w") as handle:
            json.dump(doc, handle)
        with pytest.raises(ValueError, match="version"):
            load_golden("LSTM", str(tmp_path))


class TestCompare:
    def test_tampered_counter_detected(self, lstm_golden):
        tampered = json.loads(json.dumps(lstm_golden))
        entry = next(iter(tampered["operators"].values()))
        launch = entry["variants"]["infl"]["launches"][0]
        launch["profile"]["flops"] += 1
        problems = compare_goldens(lstm_golden, tampered)
        assert problems
        assert any("profile.flops" in p for p in problems)

    def test_tampered_schedule_detected(self, lstm_golden):
        tampered = json.loads(json.dumps(lstm_golden))
        entry = next(iter(tampered["operators"].values()))
        launch = entry["variants"]["infl"]["launches"][0]
        name = next(iter(launch["schedule"]["statements"]))
        launch["schedule"]["statements"][name][0]["const"] = 99
        problems = compare_goldens(lstm_golden, tampered)
        assert any("schedule" in p and "const" in p for p in problems)

    def test_config_drift_short_circuits(self, lstm_golden):
        drifted = json.loads(json.dumps(lstm_golden))
        drifted["config"]["seed"] = 5
        problems = compare_goldens(lstm_golden, drifted)
        assert problems == ["config.seed: 0 -> 5"]

    def test_version_mismatch_short_circuits(self, lstm_golden):
        other = dict(lstm_golden, version=GOLDEN_VERSION + 1)
        problems = compare_goldens(lstm_golden, other)
        assert len(problems) == 1
        assert "version" in problems[0]


class TestCommittedGoldens:
    """The anchor: the checked-in golden for one network must match a fresh
    build under the default configuration (full check is `repro verify`)."""

    def test_lstm_matches_committed(self):
        expected = load_golden("LSTM")
        assert expected is not None, \
            "tests/goldens/LSTM.json missing; run `repro verify " \
            "--update-goldens`"
        actual = build_network_golden(
            "LSTM", GoldenConfig(**expected["config"]))
        assert compare_goldens(expected, actual) == []

    @pytest.mark.parametrize("family", GOLDEN_FAMILIES)
    def test_family_matches_committed(self, family):
        expected = load_golden(f"family_{family}")
        assert expected is not None, \
            f"tests/goldens/family_{family}.json missing; run " \
            "`repro verify --update-goldens`"
        actual = build_family_golden(
            family, GoldenConfig(**expected["config"]))
        assert compare_goldens(expected, actual) == []
        entry = next(iter(actual["operators"].values()))
        assert entry["template"]["launches"], \
            "family golden must pin the template baseline"
