"""Parallel suite evaluation must be bitwise-identical to the serial path,
and per-worker pass metrics must merge into one report."""

import json

import pytest

from repro.cli import main
from repro.eval import EvaluationConfig, evaluate_all, evaluate_network


def _config(**overrides):
    base = dict(limit_per_network=2, sample_blocks=2)
    base.update(overrides)
    return EvaluationConfig(**base)


def assert_results_identical(serial, parallel):
    assert serial.network == parallel.network
    assert len(serial.operators) == len(parallel.operators)
    for ours, theirs in zip(serial.operators, parallel.operators):
        assert ours.name == theirs.name
        assert ours.op_class == theirs.op_class
        assert ours.times == theirs.times  # bitwise float equality
        assert ours.influenced == theirs.influenced
        assert ours.vectorized == theirs.vectorized
        assert ours.launches == theirs.launches


class TestParallelEquivalence:
    def test_network_parallel_matches_serial(self):
        serial = evaluate_network("LSTM", _config())
        parallel = evaluate_network("LSTM", _config(), jobs=4)
        assert_results_identical(serial, parallel)

    def test_jobs_via_config(self):
        serial = evaluate_network("LSTM", _config())
        parallel = evaluate_network("LSTM", _config(jobs=2))
        assert_results_identical(serial, parallel)

    def test_evaluate_all_parallel_matches_serial(self):
        networks = ["LSTM", "VGG16"]
        serial = evaluate_all(_config(limit_per_network=1),
                              networks=networks)
        parallel = evaluate_all(_config(limit_per_network=1),
                                networks=networks, jobs=2)
        assert set(serial) == set(parallel) == set(networks)
        for network in networks:
            assert_results_identical(serial[network], parallel[network])

    def test_parallel_progress_reports_every_operator(self):
        seen = []
        evaluate_network("LSTM", _config(), progress=seen.append, jobs=2)
        assert len(seen) == 2
        assert all("LSTM" in line for line in seen)


class TestMergedMetrics:
    def test_parallel_metrics_merged(self):
        result = evaluate_network("LSTM", _config(), jobs=2)
        passes = result.metrics["passes"]
        # 2 operators x 4 variants; every stage ran in some worker.
        for name in ("deps", "schedule", "codegen", "vectorize", "gpu-map"):
            assert passes[name]["calls"] > 0
            assert passes[name]["seconds"] >= 0.0
        counters = result.metrics["counters"]
        assert counters["scheduler.ilp_solves"] > 0
        # novec/infl share a schedule through the content cache even with
        # per-worker caches.
        assert counters["cache.hits"] > 0

    def test_serial_metrics_present(self):
        result = evaluate_network("LSTM", _config())
        assert result.metrics["passes"]["schedule"]["calls"] > 0
        assert result.metrics["counters"]["cache.hits"] > 0


class TestCli:
    def test_table2_jobs_and_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        assert main(["table2", "--networks", "LSTM", "--limit", "1",
                     "--sample-blocks", "2", "--jobs", "2",
                     "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "per-pass compile time:" in out
        assert "schedule cache:" in out
        events = json.loads(trace_file.read_text())
        assert any(e.get("event") == "pass" for e in events)

    def test_table2_serial_prints_pass_summary(self, capsys):
        assert main(["table2", "--networks", "LSTM", "--limit", "1",
                     "--sample-blocks", "2"]) == 0
        assert "per-pass compile time:" in capsys.readouterr().out
