"""End-to-end observability: serial-vs-parallel metric identity, merged
span timelines, and the CLI's ``--trace``/``--metrics`` export files."""

import json

import pytest

from repro.cli import main
from repro.eval import EvaluationConfig, evaluate_network


def _config(**overrides):
    base = dict(limit_per_network=2, sample_blocks=2)
    base.update(overrides)
    return EvaluationConfig(**base)


@pytest.fixture(scope="module")
def warm_process():
    """Warm the process-global emptiness memo before measuring.

    ``repro.sets.polyhedron._EMPTINESS_CACHE`` persists for the life of the
    process: the first evaluation pays extra solver work (LP solves, pivots)
    that later runs — and forked workers, which inherit the warm cache —
    skip.  Warming once makes the serial and parallel runs below start from
    the same cache state, so their solver counters match exactly."""
    evaluate_network("LSTM", _config())


class TestSerialParallelMetrics:
    def test_merged_metrics_identical(self, warm_process):
        serial = evaluate_network("LSTM", _config()).metrics
        parallel = evaluate_network("LSTM", _config(), jobs=2).metrics

        def counters(snapshot):
            # `resilience.worker_retries` only exists in parallel runs (it
            # counts crashed pool workers whose items were retried in the
            # parent); everything the workers themselves compute must match.
            return {k: v for k, v in snapshot["counters"].items()
                    if not k.startswith("resilience.worker")}

        assert counters(serial) == counters(parallel)
        assert serial["gauges"] == parallel["gauges"]
        # Pass call counts are deterministic; wall-clock seconds are not.
        serial_calls = {n: e["calls"] for n, e in serial["passes"].items()}
        parallel_calls = {n: e["calls"] for n, e in parallel["passes"].items()}
        assert serial_calls == parallel_calls
        assert set(serial["histograms"]) == set(parallel["histograms"])
        for name, entry in serial["histograms"].items():
            other = parallel["histograms"][name]
            assert other["count"] == entry["count"], name
            if name.startswith("gpu."):
                # The GPU model is deterministic, so even the bucket
                # distributions agree bit-for-bit.
                assert other == entry, name

    def test_merged_spans_time_ordered(self, warm_process):
        result = evaluate_network("LSTM", _config(trace=True), jobs=2)
        spans = result.metrics.get("spans", [])
        assert spans
        starts = [span["start"] for span in spans]
        assert starts == sorted(starts)
        # Roots are variant compilations plus measurement kernel runs.
        names = {span["name"] for span in spans}
        assert names == {"compile", "gpu.kernel"}
        for span in spans:
            assert span["end"] >= span["start"]
            for child in span["children"]:
                assert span["start"] <= child["start"]
                assert child["end"] <= span["end"]

    def test_flat_events_merge_time_ordered(self, warm_process):
        result = evaluate_network("LSTM", _config(trace=True), jobs=2)
        events = result.metrics.get("events", [])
        assert events
        assert all("ts" in e and "worker" in e for e in events)
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)


class TestCliExport:
    def test_table2_chrome_trace_is_valid(self, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["table2", "--networks", "LSTM", "--limit", "1",
                     "--sample-blocks", "2", "--trace", str(trace),
                     "--trace-format", "chrome"]) == 0
        doc = json.loads(trace.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "i")
            for key in ("name", "ts", "pid", "tid"):
                assert key in event, key
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)
        names = {e["name"] for e in events}
        assert "compile" in names
        assert any(n.startswith("pass.") for n in names)
        assert any(n.startswith("gpu.") for n in names)

    def test_table2_metrics_file(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        assert main(["table2", "--networks", "LSTM", "--limit", "1",
                     "--sample-blocks", "2", "--metrics", str(metrics)]) == 0
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["scheduler.ilp_solves"] > 0
        assert payload["counters"]["gpu.kernels"] > 0
        assert "passes" in payload
        summaries = payload["histogram_summaries"]
        assert "solver.solve_seconds" in summaries
        solve = summaries["solver.solve_seconds"]
        assert solve["count"] > 0
        assert 0 <= solve["p50"] <= solve["p95"] <= solve["max"]
        # Bulky trace keys stay out of the metrics document.
        assert "events" not in payload and "spans" not in payload

    def test_trace_flushed_when_evaluation_raises(self, tmp_path,
                                                  monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr("repro.cli.evaluate_all", boom)
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        with pytest.raises(RuntimeError):
            main(["table2", "--networks", "LSTM", "--limit", "1",
                  "--trace", str(trace), "--metrics", str(metrics)])
        # Both files exist and hold valid (if empty) JSON documents.
        assert json.loads(trace.read_text()) == []
        assert json.loads(metrics.read_text())["counters"] == {}

    def test_table1_metrics_gauges(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main(["table1", "--metrics", str(metrics)]) == 0
        payload = json.loads(metrics.read_text())
        assert payload["gauges"]["table1.networks"] >= 7
        assert any(name.endswith(".total_operators")
                   for name in payload["gauges"])


class TestProfileCommand:
    def test_report_sections_and_exports(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["profile", "lstm", "--limit", "1",
                     "--sample-blocks", "2", "--trace", str(trace),
                     "--trace-format", "chrome",
                     "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        # Case-insensitive lookup resolved to the Table I name.
        assert "LSTM" in out
        assert "per-pass compile time:" in out
        assert "solver.solve_seconds" in out and "p50=" in out
        assert "per-kernel memory counters:" in out
        assert "DRAM tx" in out and "coalesce" in out
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["gpu.kernels"] >= 1
        assert payload["counters"]["gpu.dram_transactions"] > 0
        assert "solver.solve_seconds" in payload["histogram_summaries"]
        doc = json.loads(trace.read_text())
        assert any(e["name"] == "gpu.kernel" for e in doc["traceEvents"])

    def test_unknown_network_fails(self, capsys):
        assert main(["-q", "profile", "no-such-net"]) == 2
