"""Round-trip and error-path tests for schedule serialization."""

import json

import pytest

from repro.influence import build_influence_tree
from repro.ir.examples import running_example
from repro.schedule import InfluencedScheduler
from repro.schedule.serialize import (
    FORMAT_VERSION,
    KNOWN_DEGRADATIONS,
    degradation_of,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.workloads import operators


@pytest.fixture(scope="module")
def kernel():
    return running_example(8)


@pytest.fixture(scope="module")
def schedule(kernel):
    scheduler = InfluencedScheduler(kernel)
    return scheduler.schedule(build_influence_tree(kernel))


class TestRoundTrip:
    def test_running_example_influenced(self, kernel, schedule):
        rebuilt = schedule_from_dict(kernel, schedule_to_dict(schedule))
        assert schedule_to_dict(rebuilt) == schedule_to_dict(schedule)

    def test_round_trip_preserves_dimension_info(self, kernel, schedule):
        rebuilt = schedule_from_dict(kernel, schedule_to_dict(schedule))
        for original, copy in zip(schedule.dims, rebuilt.dims):
            assert original.vector == copy.vector
            assert original.vector_width == copy.vector_width
            assert original.coincident == copy.coincident
            assert original.from_influence == copy.from_influence

    def test_json_round_trip_through_text(self):
        small = operators.broadcast_bias_op("bb", rows=8, cols=8)
        baseline = InfluencedScheduler(small).schedule()
        text = schedule_to_json(baseline)
        rebuilt = schedule_from_json(small, text)
        assert schedule_to_json(rebuilt) == text
        # The payload is genuinely JSON (no Fraction leakage).
        json.loads(text)


class TestVersioning:
    def test_unknown_version_rejected(self, kernel, schedule):
        payload = schedule_to_dict(schedule)
        payload["version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            schedule_from_dict(kernel, payload)

    def test_missing_version_rejected(self, kernel, schedule):
        payload = schedule_to_dict(schedule)
        del payload["version"]
        with pytest.raises(ValueError, match="version"):
            schedule_from_dict(kernel, payload)

    def test_statement_mismatch_rejected(self, schedule):
        payload = schedule_to_dict(schedule)
        other = operators.broadcast_bias_op("bb", rows=8, cols=8)
        with pytest.raises(ValueError, match="statement|parameter"):
            schedule_from_dict(other, payload)


class TestDegradationMetadata:
    def test_untagged_payload_reads_as_none(self, schedule):
        payload = schedule_to_dict(schedule)
        assert "degradation" not in payload
        assert degradation_of(payload) == "none"

    @pytest.mark.parametrize("rung", KNOWN_DEGRADATIONS)
    def test_tag_round_trips(self, kernel, schedule, rung):
        payload = schedule_to_dict(schedule, degradation=rung)
        assert degradation_of(payload) == rung
        # The tag never breaks schedule reconstruction.
        schedule_from_dict(kernel, payload)

    def test_unknown_rung_rejected_on_write(self, schedule):
        with pytest.raises(ValueError, match="degradation"):
            schedule_to_dict(schedule, degradation="half-broken")

    def test_unknown_rung_rejected_on_read(self, schedule):
        payload = schedule_to_dict(schedule)
        payload["degradation"] = "half-broken"
        with pytest.raises(ValueError, match="degradation"):
            degradation_of(payload)
