"""Unit tests for :mod:`repro.obs` — spans, histograms, the ambient
handle, Chrome trace-event export and the package logger."""

import logging

import pytest

from repro.obs import (
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_OBS,
    Obs,
    Span,
    Tracer,
    configure_logging,
    format_metrics_report,
    get_obs,
    use_obs,
)
from repro.obs.logutil import logger
from repro.obs.metrics import RATIO_BUCKETS, format_histogram_line


# -- histograms ---------------------------------------------------------------


class TestHistogram:
    def test_percentiles_exact_with_unit_buckets(self):
        h = Histogram(bounds=range(1, 101))
        for value in range(1, 101):
            h.observe(value)
        assert h.count == 100
        assert h.quantile(0.50) == pytest.approx(50.0)
        assert h.quantile(0.95) == pytest.approx(95.0)
        assert h.quantile(0.0) == 1
        assert h.quantile(1.0) == 100
        summary = h.summary()
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)

    def test_empty_histogram_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0
        assert summary["p95"] == 0.0

    def test_overflow_bucket(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(10.0)
        assert h.bucket_counts == [0, 0, 1]
        assert h.summary()["max"] == 10.0
        # The overflow bucket interpolates toward the exact maximum.
        assert h.quantile(0.99) <= 10.0

    def test_latency_buckets_cover_realistic_solves(self):
        h = Histogram(LATENCY_BUCKETS)
        for value in (2e-6, 5e-4, 0.01, 1.5):
            h.observe(value)
        assert sum(h.bucket_counts) == 4
        assert h.bucket_counts[-1] == 0  # nothing hit overflow

    def test_merge_combines_distributions(self):
        left, right = Histogram(range(1, 101)), Histogram(range(1, 101))
        for value in range(1, 51):
            left.observe(value)
        for value in range(51, 101):
            right.observe(value)
        left.merge_dict(right.as_dict())
        whole = Histogram(range(1, 101))
        for value in range(1, 101):
            whole.observe(value)
        assert left.as_dict() == whole.as_dict()
        assert left.quantile(0.5) == pytest.approx(whole.quantile(0.5))

    def test_merge_bounds_mismatch_raises(self):
        with pytest.raises(ValueError):
            Histogram(LATENCY_BUCKETS).merge_dict(
                Histogram(RATIO_BUCKETS).as_dict())

    def test_round_trip(self):
        h = Histogram(RATIO_BUCKETS)
        for value in (0.1, 0.5, 0.93, 1.0):
            h.observe(value)
        assert Histogram.from_dict(h.as_dict()).as_dict() == h.as_dict()

    def test_format_histogram_line_uses_time_units_for_seconds(self):
        h = Histogram(LATENCY_BUCKETS)
        h.observe(0.002)
        line = format_histogram_line("solver.solve_seconds", h)
        assert "p50=" in line and "p95=" in line
        assert "ms" in line or "us" in line


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.count("solver.pivots", 3)
        registry.count("solver.pivots", 2)
        registry.gauge("table1.networks", 7)
        registry.observe("gpu.coalescing_efficiency", 0.5,
                         bounds=RATIO_BUCKETS)
        assert registry.counters["solver.pivots"] == 5
        assert registry.gauges["table1.networks"] == 7
        assert registry.histograms["gpu.coalescing_efficiency"].count == 1

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.count("a")
        registry.gauge("b", 1)
        registry.observe("c", 1.0)
        assert registry.as_dict() == {"counters": {}, "gauges": {},
                                      "histograms": {}}

    def test_merge_folds_worker_payloads(self):
        ours, theirs = MetricsRegistry(), MetricsRegistry()
        ours.count("x", 1)
        theirs.count("x", 2)
        theirs.count("y", 4)
        theirs.observe("lat", 0.25)
        ours.merge_dict(theirs.as_dict())
        assert ours.counters == {"x": 3, "y": 4}
        assert ours.histograms["lat"].count == 1

    def test_report_lists_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.count("scheduler.ilp_solves", 9)
        registry.observe("solver.solve_seconds", 0.001)
        report = format_metrics_report(registry)
        assert "scheduler.ilp_solves" in report
        assert "solver.solve_seconds" in report


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_carry_attributes(self):
        tracer = Tracer(worker=42)
        with tracer.span("compile", kernel="k") as outer:
            with tracer.span("pass.schedule") as inner:
                inner.set(dims=3)
            tracer.event("cache-hit", key="abc")
            outer.set(variant="infl")
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "compile"
        assert root.attrs == {"kernel": "k", "variant": "infl"}
        assert root.pid == 42
        assert [c.name for c in root.children] == ["pass.schedule"]
        assert root.children[0].attrs == {"dims": 3}
        assert [e["name"] for e in root.events] == ["cache-hit"]
        # Timestamps are monotone and children are contained in parents.
        child = root.children[0]
        assert root.start <= child.start <= child.end <= root.end

    def test_event_without_open_span_becomes_degenerate_root(self):
        tracer = Tracer()
        tracer.event("standalone", detail=1)
        assert len(tracer.roots) == 1
        assert tracer.roots[0].duration == 0.0

    def test_span_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", x=1):
            with tracer.span("b"):
                tracer.event("tick")
        payload = tracer.roots[0].as_dict()
        assert Span.from_dict(payload).as_dict() == payload

    def test_merge_dict_sorts_roots_by_start(self):
        early, late = Tracer(worker=1), Tracer(worker=2)
        with late.span("late"):
            pass
        with early.span("early"):
            pass
        # Shift the "early" worker's span before the other one, as if its
        # process had started first on the shared wall clock.
        early.roots[0].start -= 1000.0
        early.roots[0].end -= 1000.0
        merged = Tracer(enabled=True, worker=0)
        merged.merge_dict(late.as_dict())
        merged.merge_dict(early.as_dict())
        assert [s.name for s in merged.roots] == ["early", "late"]
        assert {s.pid for s in merged.roots} == {1, 2}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as span:
            span.set(ignored=True)
            tracer.event("b")
        assert tracer.roots == []
        assert tracer.as_dict() == {"worker": tracer.worker, "spans": []}

    def test_flat_events_are_stamped_and_ordered(self):
        tracer = Tracer(worker=7)
        with tracer.span("compile"):
            with tracer.span("pass.deps"):
                pass
            tracer.event("cache-hit")
        events = tracer.flat_events()
        assert all("ts" in e and e["worker"] == 7 for e in events)
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)
        assert {e["event"] for e in events} == {"span", "cache-hit"}


class TestChromeTrace:
    def _sample_tracer(self):
        tracer = Tracer(worker=11)
        with tracer.span("compile", kernel="k"):
            with tracer.span("pass.schedule"):
                tracer.event("scheduler.ilp-solve", dim=0)
            with tracer.span("pass.codegen"):
                pass
        return tracer

    def test_complete_events_have_required_fields(self):
        doc = self._sample_tracer().chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert len(events) == 4  # 3 spans + 1 instant
        for event in events:
            assert event["ph"] in ("X", "i")
            for key in ("name", "ph", "ts", "pid", "tid", "cat", "args"):
                assert key in event, key
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            else:
                assert event["s"] == "t"

    def test_children_nest_inside_parents(self):
        doc = self._sample_tracer().chrome_trace()
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        parent = by_name["compile"]
        for child_name in ("pass.schedule", "pass.codegen"):
            child = by_name[child_name]
            assert parent["ts"] <= child["ts"]
            assert child["ts"] + child["dur"] <= \
                parent["ts"] + parent["dur"] + 1e-6
        instant = by_name["scheduler.ilp-solve"]
        schedule = by_name["pass.schedule"]
        assert schedule["ts"] <= instant["ts"] <= \
            schedule["ts"] + schedule["dur"] + 1e-6

    def test_timestamps_relative_and_sorted(self):
        events = self._sample_tracer().chrome_trace()["traceEvents"]
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)
        assert stamps[0] == 0.0  # relative to the earliest span

    def test_category_is_name_prefix(self):
        events = self._sample_tracer().chrome_trace()["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["pass.schedule"]["cat"] == "pass"
        assert by_name["compile"]["cat"] == "compile"


# -- the ambient handle -------------------------------------------------------


class TestAmbientObs:
    def test_default_is_disabled(self):
        obs = get_obs()
        assert obs is NULL_OBS
        assert not obs.tracer.enabled
        assert not obs.metrics.enabled

    def test_use_obs_installs_and_restores(self):
        mine = Obs(Tracer(enabled=True), MetricsRegistry())
        with use_obs(mine):
            assert get_obs() is mine
            get_obs().count("x")
        assert get_obs() is NULL_OBS
        assert mine.metrics.counters == {"x": 1}

    def test_use_obs_restores_on_exception(self):
        mine = Obs()
        with pytest.raises(RuntimeError):
            with use_obs(mine):
                raise RuntimeError
        assert get_obs() is NULL_OBS

    def test_obs_shims_delegate(self):
        obs = Obs(Tracer(enabled=True, worker=1), MetricsRegistry())
        with obs.span("a") as span:
            span.set(n=1)
            obs.event("tick")
        obs.count("c", 2)
        obs.observe("h", 0.5, bounds=RATIO_BUCKETS)
        assert obs.tracer.roots[0].attrs == {"n": 1}
        assert obs.metrics.counters == {"c": 2}
        assert obs.metrics.histograms["h"].count == 1


# -- logging ------------------------------------------------------------------


class TestLogging:
    def test_verbosity_maps_to_levels(self):
        assert configure_logging(-1).level == logging.WARNING
        assert configure_logging(0).level == logging.INFO
        assert configure_logging(1).level == logging.DEBUG

    def test_reconfigure_replaces_cli_handler(self):
        configure_logging(0)
        configure_logging(0)
        named = [h for h in logger.handlers
                 if h.get_name() == "repro-cli"]
        assert len(named) == 1
