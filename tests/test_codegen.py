"""Codegen tests: AST generation, semantics round trip, mapping, vectorize."""

from fractions import Fraction

import pytest

from repro.codegen import generate_ast, map_to_gpu, vectorize
from repro.codegen.ast import (
    Loop,
    Seq,
    StatementCall,
    render_ast,
    statements_in,
    walk,
)
from repro.codegen.interp import check_semantics, execute
from repro.influence import build_influence_tree
from repro.ir import Kernel
from repro.ir.examples import (
    elementwise_chain,
    matmul,
    running_example,
    transpose_add,
)
from repro.schedule import InfluencedScheduler


def compile_kernel(kernel, influenced=False, enable_vec=True, max_threads=8):
    scheduler = InfluencedScheduler(kernel)
    tree = build_influence_tree(kernel) if influenced else None
    schedule = scheduler.schedule(tree)
    ast = generate_ast(kernel, schedule)
    ast = vectorize(ast, kernel, schedule, scheduler.relations,
                    enable=enable_vec)
    mapped = map_to_gpu(kernel, ast, schedule, max_threads=max_threads)
    return scheduler, schedule, mapped


KERNELS = [
    ("running_plain", lambda: running_example(4), False),
    ("running_infl", lambda: running_example(4), True),
    ("matmul_plain", lambda: matmul(4), False),
    ("matmul_infl", lambda: matmul(4), True),
    ("chain_plain", lambda: elementwise_chain(4, 3), False),
    ("chain_infl", lambda: elementwise_chain(4, 3), True),
    ("transpose_plain", lambda: transpose_add(4), False),
    ("transpose_infl", lambda: transpose_add(4), True),
]


class TestSemanticsRoundTrip:
    """The strongest correctness check in the repo: every compiled kernel
    executes exactly its iteration domains in a dependence-preserving
    order."""

    @pytest.mark.parametrize("name,make,influenced",
                             KERNELS, ids=[k[0] for k in KERNELS])
    def test_round_trip(self, name, make, influenced):
        kernel = make()
        _, _, mapped = compile_kernel(kernel, influenced=influenced)
        assert check_semantics(kernel, mapped.ast) == []


class TestAstShape:
    def test_running_example_fused_shape(self):
        """Plain scheduling fuses X into Y's nest, guarded at the loop
        start (the Fig. 2(c) structure without vector marking)."""
        kernel = running_example(4)
        _, schedule, mapped = compile_kernel(kernel, influenced=False)
        text = render_ast(mapped.ast)
        assert "X(" in text and "Y(" in text
        assert "if (" in text  # the fused producer guard

    def test_vector_loop_present_when_influenced(self):
        kernel = running_example(8)
        _, _, mapped = compile_kernel(kernel, influenced=True)
        vec_loops = [n for n in walk(mapped.ast)
                     if isinstance(n, Loop) and n.vector]
        assert len(vec_loops) == 1
        assert vec_loops[0].vector_width == 4

    def test_novec_strips_vector(self):
        kernel = running_example(8)
        _, _, mapped = compile_kernel(kernel, influenced=True,
                                      enable_vec=False)
        assert not any(isinstance(n, Loop) and n.vector
                       for n in walk(mapped.ast))

    def test_guarded_producer_not_vectorized(self):
        kernel = running_example(8)
        _, _, mapped = compile_kernel(kernel, influenced=True)
        for call in statements_in(mapped.ast):
            if call.statement.name == "X":
                assert call.vector_width == 1
            else:
                assert call.vector_width == 4

    def test_odd_extent_demotes(self):
        kernel = running_example(7)  # 7 % 4 != 0 and 7 % 2 != 0
        _, _, mapped = compile_kernel(kernel, influenced=True)
        assert not any(isinstance(n, Loop) and n.vector
                       for n in walk(mapped.ast))


class TestMapping:
    def test_thread_mapping_exists(self):
        kernel = elementwise_chain(8, 2)
        _, _, mapped = compile_kernel(kernel, influenced=False)
        assert mapped.block, "a parallel kernel must map threads"
        assert mapped.n_threads_per_block >= 1

    def test_strip_mine_large_thread_loop(self):
        kernel = elementwise_chain(64, 1)
        _, _, mapped = compile_kernel(kernel, influenced=False, max_threads=8)
        assert mapped.n_threads_per_block == 8
        assert mapped.n_blocks >= 8

    def test_vector_outer_strip_is_thread_mapped_for_elementwise(self):
        kernel = elementwise_chain(16, 2)
        _, _, mapped = compile_kernel(kernel, influenced=True, max_threads=4)
        assert mapped.block
        thread_var = mapped.block[0].loop_var
        # The thread variable is the vector loop's outer strip.
        assert thread_var.endswith("o") or thread_var.endswith("t")

    def test_hoisting_exposes_parallel_dim(self):
        """Influenced running example: k is outermost in the schedule but
        the coincident i loop must be hoisted and mapped."""
        kernel = running_example(16)
        _, _, mapped = compile_kernel(kernel, influenced=True, max_threads=8)
        assert mapped.block, "hoisting must expose a mappable loop"

    def test_emit_cuda_mentions_launch(self):
        kernel = elementwise_chain(8, 1)
        _, _, mapped = compile_kernel(kernel)
        text = mapped.emit_cuda()
        assert "<<<" in text and "threadIdx.x" in text


class TestInterp:
    def test_execute_counts(self):
        kernel = matmul(3)
        _, _, mapped = compile_kernel(kernel)
        instances = list(execute(mapped.ast, kernel.params))
        assert len(instances) == 27

    def test_check_semantics_catches_reversal(self):
        """Swapping two dependent calls must be reported."""
        kernel = elementwise_chain(2, 2)
        _, _, mapped = compile_kernel(kernel)
        # Swap the order of the two statement calls.
        calls = statements_in(mapped.ast)
        assert len(calls) == 2

        def swap(node):
            if isinstance(node, Seq):
                idx = [i for i, c in enumerate(node.children)
                       if isinstance(c, StatementCall)]
                if len(idx) == 2:
                    i, j = idx
                    node.children[i], node.children[j] = \
                        node.children[j], node.children[i]
                    return True
                return any(swap(c) for c in node.children)
            if isinstance(node, Loop):
                return swap(node.body)
            return False

        assert swap(mapped.ast)
        assert check_semantics(kernel, mapped.ast) != []

    def test_check_semantics_catches_missing(self):
        kernel = elementwise_chain(2, 1)
        _, _, mapped = compile_kernel(kernel)
        # Shrink a loop by one iteration (missing instances must be found).
        for node in walk(mapped.ast):
            if isinstance(node, Loop):
                node.uppers = [u - 1 for u in node.uppers]
                break
        assert check_semantics(kernel, mapped.ast) != []


class TestTriangularDomain:
    def test_triangular_codegen(self):
        kernel = Kernel("tri", params={"N": 5})
        kernel.add_tensor("A", (5, 5))
        kernel.add_statement("S", [("i", 0, "N"), ("j", 0, "i + 1")],
                             writes=[("A", ["i", "j"])])
        _, _, mapped = compile_kernel(kernel)
        assert check_semantics(kernel, mapped.ast) == []


class TestUnionLoopClassification:
    def test_mixed_depth_chain_round_trips(self):
        """Regression: statements of depths 3/1/3 chained through rank-1
        tensors.  The fused union loop spans min-of-lowers..max-of-uppers,
        so deciding whether a scalar time level sits strictly outside it
        must quantify over *all* member bounds (``all``), while plain
        single-statement loops (max..min) need ``any``.  The old ``any``
        on union loops misplaced the depth-1 statement relative to its
        producers/consumers."""
        kernel = Kernel("uni", params={"N": 4})
        kernel.add_tensor("In", (4,))
        for name in ("T0", "T1", "T2"):
            kernel.add_tensor(name, (4,))
        deep = [("i", 0, "N"), ("j", 0, "N"), ("k", 0, "N")]
        kernel.add_statement("S0", deep, writes=[("T0", ["i"])],
                             reads=[("In", ["i"]), ("T0", ["i"])])
        kernel.add_statement("S1", [("i", 0, "N")], writes=[("T1", ["i"])],
                             reads=[("T0", ["i"])])
        kernel.add_statement("S2", deep, writes=[("T2", ["i"])],
                             reads=[("T1", ["i"]), ("T2", ["i"])])
        kernel.validate()
        _, _, mapped = compile_kernel(kernel, enable_vec=False,
                                      max_threads=4)
        assert check_semantics(kernel, mapped.ast) == []
