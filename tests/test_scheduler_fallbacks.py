"""Backtracking-ladder activations on crafted unsatisfiable influence trees.

The scheduler's constraints bound every iterator coefficient to
``[0, coeff_bound]``, so an influence node demanding a coefficient above
the bound is structurally infeasible — a precise way to force one branch
of the tree to fail while its sibling (or the plain restart) succeeds.
"""

from repro.influence import InfluenceNode, InfluenceTree, theta_iter
from repro.ir.examples import running_example
from repro.schedule import InfluencedScheduler, SchedulerOptions
from repro.schedule.analysis import verify_schedule
from repro.solver.problem import var

COEFF_BOUND = 7
IMPOSSIBLE = COEFF_BOUND + 3  # above the coefficient bound: infeasible


def run(tree):
    kernel = running_example(16)
    scheduler = InfluencedScheduler(
        kernel, options=SchedulerOptions(coeff_bound=COEFF_BOUND))
    schedule = scheduler.schedule(tree)
    assert verify_schedule(schedule, scheduler.validity_relations) == []
    return scheduler, schedule


class TestSiblingFallback:
    def test_infeasible_first_child_falls_to_sibling(self):
        tree = InfluenceTree()
        tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("Y", 0, 0)).eq(IMPOSSIBLE)],
            label="impossible"))
        tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("Y", 0, 0)).eq(1)],
            label="feasible"))
        scheduler, schedule = run(tree)
        assert scheduler.stats.sibling_fallbacks >= 1
        assert not scheduler.stats.influence_abandoned
        # The sibling's constraint made it into the schedule.
        assert schedule.rows["Y"][0].coefficient_of("i") == 1

    def test_feasible_first_child_needs_no_fallback(self):
        tree = InfluenceTree()
        tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("Y", 0, 0)).eq(1)], label="ok"))
        scheduler, _ = run(tree)
        assert scheduler.stats.sibling_fallbacks == 0
        assert scheduler.stats.influence_nodes_applied >= 1


class TestRestartWithoutInfluence:
    def test_single_infeasible_child_abandons_influence(self):
        tree = InfluenceTree()
        tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("Y", 0, 0)).eq(IMPOSSIBLE)],
            label="impossible"))
        scheduler, schedule = run(tree)
        assert scheduler.stats.influence_abandoned
        assert schedule.is_complete()
        assert not any(info.from_influence for info in schedule.dims)

    def test_all_siblings_infeasible_abandons_influence(self):
        tree = InfluenceTree()
        for index in range(2):
            tree.root.add_child(InfluenceNode(
                constraints=[var(theta_iter("Y", 0, 0)).eq(IMPOSSIBLE + index)],
                label=f"impossible{index}"))
        scheduler, schedule = run(tree)
        assert scheduler.stats.sibling_fallbacks >= 1
        assert scheduler.stats.influence_abandoned
        assert schedule.is_complete()
