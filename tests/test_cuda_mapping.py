"""Focused tests for the GPU mapping pass: chains, hoisting, strip-mining,
axis assignment."""

import pytest

from repro.codegen import generate_ast, map_to_gpu, vectorize
from repro.codegen.ast import Loop, Seq, walk
from repro.codegen.cuda import (
    _mappable_chain,
    hoist_coincident_loops,
)
from repro.codegen.interp import check_semantics
from repro.influence import build_influence_tree
from repro.ir import Kernel
from repro.ir.examples import elementwise_chain, matmul, running_example
from repro.schedule import InfluencedScheduler


def build(kernel, influenced=False, enable_vec=False):
    scheduler = InfluencedScheduler(kernel)
    tree = build_influence_tree(kernel) if influenced else None
    schedule = scheduler.schedule(tree)
    ast = generate_ast(kernel, schedule)
    ast = vectorize(ast, kernel, schedule, scheduler.relations,
                    enable=enable_vec)
    return schedule, ast


class TestMappableChain:
    def test_stops_at_sequential(self):
        kernel = matmul(8)
        schedule, ast = build(kernel)
        chain = _mappable_chain(ast, kernel.params)
        # i and j are parallel; k is sequential.
        assert len(chain) == 2

    def test_stops_at_multi_child_seq(self):
        kernel = running_example(8)
        schedule, ast = build(kernel)
        chain = _mappable_chain(ast, kernel.params)
        assert len(chain) >= 1  # the fused i loop at least


class TestHoisting:
    def test_hoist_moves_coincident_out(self):
        """Influenced running example: the schedule puts sequential k
        outermost; hoisting must move the coincident i loop outside."""
        kernel = running_example(16)
        schedule, ast = build(kernel, influenced=True, enable_vec=True)
        hoist_coincident_loops(ast, schedule)
        outer = ast.children[0]
        assert isinstance(outer, Loop)
        info = schedule.dims[outer.schedule_dim]
        assert info.coincident

    def test_hoist_preserves_semantics(self):
        kernel = running_example(4)
        schedule, ast = build(kernel, influenced=True, enable_vec=True)
        hoist_coincident_loops(ast, schedule)
        assert check_semantics(kernel, ast) == []

    def test_no_hoist_across_bands(self):
        """Dims in different bands must not be interchanged."""
        kernel = elementwise_chain(8, 2)
        schedule, ast = build(kernel)
        before = [n.var for n in walk(ast) if isinstance(n, Loop)]
        hoist_coincident_loops(ast, schedule)
        after = [n.var for n in walk(ast) if isinstance(n, Loop)]
        assert before == after  # i, j already coincident-outermost


class TestAxisAssignment:
    def test_blockidx_x_is_innermost_block_loop(self):
        kernel = Kernel("k4", params={"A": 4, "B": 8, "C": 16, "D": 32})
        kernel.add_tensor("T", (4, 8, 16, 32))
        kernel.add_statement(
            "S", [("a", 0, "A"), ("b", 0, "B"), ("c", 0, "C"), ("d", 0, "D")],
            writes=[("T", ["a", "b", "c", "d"])])
        schedule, ast = build(kernel)
        mapped = map_to_gpu(kernel, ast, schedule, max_threads=32)
        # Thread loop is the innermost (d); among block loops a, b, c the
        # innermost (c) must get the fastest axis, blockIdx.x.
        x_dim = next(dim for dim in mapped.grid if dim.mapping == "blockIdx.x")
        assert x_dim.extent == 16
        # Grid list is fastest-first for the simulator's decomposition.
        assert mapped.grid[0].mapping == "blockIdx.x"

    def test_extra_parallel_loops_stay_sequential(self):
        kernel = Kernel("k5", params=dict(A=2, B=2, C=2, D=2, E=32))
        kernel.add_tensor("T", (2, 2, 2, 2, 32))
        kernel.add_statement(
            "S", [("a", 0, "A"), ("b", 0, "B"), ("c", 0, "C"),
                  ("d", 0, "D"), ("e", 0, "E")],
            writes=[("T", ["a", "b", "c", "d", "e"])])
        schedule, ast = build(kernel)
        mapped = map_to_gpu(kernel, ast, schedule, max_threads=32)
        assert len(mapped.grid) <= 3
        unmapped = [n for n in walk(mapped.ast)
                    if isinstance(n, Loop) and n.mapping is None]
        assert unmapped  # at least one loop left sequential in-thread
        assert check_semantics(kernel, mapped.ast) == []

    def test_degenerate_no_parallelism(self):
        kernel = Kernel("seq", params={"N": 8})
        kernel.add_tensor("A", (8,))
        # A[i] depends on A[i-1]: the single loop is sequential.
        kernel.add_statement("S", [("i", 1, "N")],
                             writes=[("A", ["i"])],
                             reads=[("A", ["i - 1"])])
        schedule, ast = build(kernel)
        mapped = map_to_gpu(kernel, ast, schedule)
        assert mapped.n_blocks == 1
        assert mapped.n_threads_per_block == 1
        assert check_semantics(kernel, mapped.ast) == []


class TestThreadStripMine:
    def test_ragged_thread_extent_guarded(self):
        kernel = elementwise_chain(10, 1)  # 10 % 8 != 0
        schedule, ast = build(kernel)
        mapped = map_to_gpu(kernel, ast, schedule, max_threads=8)
        assert mapped.n_threads_per_block == 8
        assert check_semantics(kernel, mapped.ast) == []


def shifted_kernel(n, lower=2):
    """One statement over i in [lower, N): exercises nonzero lower bounds
    through mapping and simulation (corpus reproducer d73dcd39d0939e18)."""
    kernel = Kernel("shifted", params={"N": n})
    kernel.add_tensor("T", (n,))
    kernel.add_statement("S", [("i", lower, "N")], writes=[("T", ["i"])])
    return kernel


class TestNonzeroLowerBounds:
    def test_constant_extent_respects_min_lower(self):
        from repro.codegen.cuda import _constant_extent
        from repro.solver.problem import LinExpr
        loop = Loop(var="t0", lowers=[LinExpr(const=2), LinExpr(const=0)],
                    uppers=[LinExpr({"N": 1}, -1)], body=Seq([]))
        loop.lower_is_min = False
        assert _constant_extent(loop, {"N": 4}) == 2  # max(2,0)..3
        loop.lower_is_min = True
        assert _constant_extent(loop, {"N": 4}) == 4  # min(2,0)..3

    def test_direct_thread_mapping_keeps_instances(self):
        kernel = shifted_kernel(10)
        schedule, ast = build(kernel)
        mapped = map_to_gpu(kernel, ast, schedule, max_threads=64)
        assert mapped.n_threads_per_block == 8
        assert check_semantics(kernel, mapped.ast) == []
        from repro.gpu import simulate_kernel
        profile = simulate_kernel(mapped,
                                  sample_blocks=max(1, mapped.n_blocks))
        assert profile.flops == 8  # i in {2..9}, not raw indices {0..7}

    def test_strip_mined_thread_loop_keeps_lower(self):
        kernel = shifted_kernel(20)  # extent 18 > 4: strip-mined, ragged
        schedule, ast = build(kernel)
        mapped = map_to_gpu(kernel, ast, schedule, max_threads=4)
        assert mapped.n_threads_per_block == 4
        assert check_semantics(kernel, mapped.ast) == []
        from repro.gpu import simulate_kernel
        profile = simulate_kernel(mapped, sample_blocks=mapped.n_blocks)
        assert profile.flops == 18
