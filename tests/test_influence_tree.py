"""Tests for the influence constraint tree abstraction."""

import pytest

from repro.influence import (
    InfluenceNode,
    InfluenceTree,
    theta_const,
    theta_iter,
    theta_param,
)
from repro.influence.tree import parse_theta
from repro.solver.problem import var


def chain_tree(depths: int) -> InfluenceTree:
    tree = InfluenceTree()
    node = tree.root
    for d in range(depths):
        node = node.add_child(InfluenceNode(label=f"n{d}"))
    return tree


class TestNames:
    def test_roundtrip_iter(self):
        name = theta_iter("Y", 2, 1)
        assert parse_theta(name) == ("Y", 2, "i1")

    def test_roundtrip_param(self):
        name = theta_param("X", 0, "N")
        assert parse_theta(name) == ("X", 0, "p[N]")

    def test_roundtrip_const(self):
        assert parse_theta(theta_const("X", 1)) == ("X", 1, "0")

    def test_non_theta(self):
        assert parse_theta("c[X].i0") is None


class TestTreeStructure:
    def test_empty_tree_no_cursor(self):
        assert InfluenceTree().cursor() is None

    def test_cursor_walk(self):
        tree = chain_tree(3)
        cursor = tree.cursor()
        assert cursor.depth == 0
        cursor = cursor.first_child()
        assert cursor.depth == 1
        assert cursor.first_child().depth == 2
        assert cursor.first_child().first_child() is None

    def test_right_sibling(self):
        tree = InfluenceTree()
        tree.root.add_child(InfluenceNode(label="a"))
        tree.root.add_child(InfluenceNode(label="b"))
        cursor = tree.cursor()
        assert cursor.node.label == "a"
        sib = cursor.right_sibling()
        assert sib.node.label == "b"
        assert sib.right_sibling() is None

    def test_ancestor_right_sibling(self):
        tree = InfluenceTree()
        a = tree.root.add_child(InfluenceNode(label="a"))
        tree.root.add_child(InfluenceNode(label="b"))
        a.add_child(InfluenceNode(label="a0"))
        cursor = tree.cursor().first_child()
        assert cursor.node.label == "a0"
        up = cursor.ancestor_right_sibling()
        assert up.node.label == "b"
        assert up.depth == 0

    def test_ancestor_sibling_none(self):
        tree = chain_tree(3)
        cursor = tree.cursor().first_child().first_child()
        assert cursor.ancestor_right_sibling() is None

    def test_n_nodes(self):
        tree = InfluenceTree()
        a = tree.root.add_child(InfluenceNode())
        a.add_child(InfluenceNode())
        tree.root.add_child(InfluenceNode())
        assert tree.n_nodes() == 3


class TestValidation:
    def test_root_constraints_rejected(self):
        tree = InfluenceTree()
        tree.root.constraints.append(var(theta_iter("X", 0, 0)).eq(1))
        with pytest.raises(ValueError):
            tree.validate()

    def test_future_dimension_rejected(self):
        tree = InfluenceTree()
        node = InfluenceNode(constraints=[var(theta_iter("X", 1, 0)).eq(1)])
        tree.root.add_child(node)  # depth 0 node mentioning dim 1
        with pytest.raises(ValueError):
            tree.validate()

    def test_past_dimension_allowed(self):
        tree = InfluenceTree()
        d0 = tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("X", 0, 0)).eq(0)]))
        d0.add_child(InfluenceNode(
            constraints=[var(theta_iter("X", 0, 0))
                         + var(theta_iter("X", 1, 0)) >= 1]))
        tree.validate()

    def test_max_dim_mentioned(self):
        node = InfluenceNode(constraints=[
            var(theta_iter("X", 2, 0)) + var(theta_const("Y", 1)) >= 0])
        assert node.max_dim_mentioned() == 2

    def test_pretty_contains_labels(self):
        tree = InfluenceTree()
        node = tree.root.add_child(InfluenceNode(
            label="vec", require_parallel=True,
            constraints=[var(theta_iter("X", 0, 0)).eq(1)]))
        text = tree.pretty()
        assert "vec" in text and "parallel" in text
