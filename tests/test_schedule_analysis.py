"""Tests for satisfaction depths, schedule verification and parallelism
annotation (the multidimensional semantics of Section III-B)."""

import pytest

from repro.deps import compute_dependences
from repro.ir.examples import elementwise_chain, matmul, running_example
from repro.schedule import InfluencedScheduler, Schedule, ScheduleRow
from repro.schedule.analysis import (
    annotate_parallelism,
    satisfaction_depth,
    verify_schedule,
)


def hand_schedule(kernel, rows_per_stmt):
    """Build a Schedule from explicit per-statement coefficient rows.

    ``rows_per_stmt[name]`` is a list of (iter_coeffs, param_coeffs, const).
    """
    params = kernel.parameter_names
    schedule = Schedule(kernel.statements, params)
    n_dims = len(next(iter(rows_per_stmt.values())))
    for d in range(n_dims):
        rows = {}
        for s in kernel.statements:
            iter_coeffs, param_coeffs, const = rows_per_stmt[s.name][d]
            rows[s.name] = ScheduleRow.from_coeffs(s, params, iter_coeffs,
                                                   param_coeffs, const)
        schedule.append_dimension(rows)
    return schedule


class TestVerifySchedule:
    def test_original_order_valid(self):
        """The textual 2d+1-style schedule of the running example checks
        out (day split + per-statement identity)."""
        kernel = running_example(4)
        rels = compute_dependences(kernel)
        schedule = hand_schedule(kernel, {
            # X at (0, i, k, 0); Y at (1, i, j, k).
            "X": [([0, 0], [0], 0), ([1, 0], [0], 0),
                  ([0, 1], [0], 0), ([0, 0], [0], 0)],
            "Y": [([0, 0, 0], [0], 1), ([1, 0, 0], [0], 0),
                  ([0, 1, 0], [0], 0), ([0, 0, 1], [0], 0)],
        })
        assert verify_schedule(schedule, rels) == []

    def test_reversed_order_detected(self):
        """Scheduling Y before X breaks the flow on B."""
        kernel = running_example(4)
        rels = compute_dependences(kernel)
        schedule = hand_schedule(kernel, {
            "X": [([0, 0], [0], 1), ([1, 0], [0], 0),
                  ([0, 1], [0], 0), ([0, 0], [0], 0)],
            "Y": [([0, 0, 0], [0], 0), ([1, 0, 0], [0], 0),
                  ([0, 1, 0], [0], 0), ([0, 0, 1], [0], 0)],
        })
        violations = verify_schedule(schedule, rels)
        assert violations
        assert any("reversed" in str(v) for v in violations)

    def test_incomplete_order_detected(self):
        """Fusing X and Y at the same date never strongly satisfies the
        flow on B (ties are not an order)."""
        kernel = running_example(4)
        rels = compute_dependences(kernel)
        schedule = hand_schedule(kernel, {
            "X": [([1, 0], [0], 0), ([0, 1], [0], 0), ([0, 0], [0], 0)],
            "Y": [([1, 0, 0], [0], 0), ([0, 0, 1], [0], 0),
                  ([0, 1, 0], [0], 0)],
        })
        violations = verify_schedule(schedule, rels)
        assert any("never strongly satisfied" in str(v) for v in violations)


class TestSatisfactionDepth:
    def test_scalar_split_satisfies_at_zero(self):
        kernel = running_example(4)
        rels = [r for r in compute_dependences(kernel)
                if r.source.name == "X" and r.target.name == "Y"]
        schedule = hand_schedule(kernel, {
            "X": [([0, 0], [0], 0), ([1, 0], [0], 0), ([0, 1], [0], 0),
                  ([0, 0], [0], 0)],
            "Y": [([0, 0, 0], [0], 1), ([1, 0, 0], [0], 0),
                  ([0, 1, 0], [0], 0), ([0, 0, 1], [0], 0)],
        })
        assert all(satisfaction_depth(r, schedule) == 0 for r in rels)

    def test_reduction_satisfied_at_k(self):
        kernel = matmul(4)
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        self_rels = [r for r in scheduler.validity_relations
                     if r.source.name == r.target.name]
        assert self_rels
        assert {satisfaction_depth(r, schedule) for r in self_rels} == {2}


class TestParallelismAnnotation:
    def test_elementwise_all_parallel_loops(self):
        kernel = elementwise_chain(4, 2)
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        annotate_parallelism(schedule, scheduler.validity_relations)
        # Loop dims parallel; the final scalar dim carries the chain order.
        loop_dims = [d for d in range(schedule.n_dims)
                     if not all(schedule.rows[s.name][d].is_scalar
                                for s in kernel.statements)]
        assert all(schedule.dims[d].parallel for d in loop_dims)

    def test_reduction_dim_not_parallel(self):
        kernel = matmul(4)
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        annotate_parallelism(schedule, scheduler.validity_relations)
        flags = [info.parallel for info in schedule.dims]
        assert flags == [True, True, False]

    def test_annotation_position_sensitive(self):
        """The same k row is sequential wherever it sits, but the i/j rows
        stay parallel after it — restriction by earlier dims matters."""
        kernel = matmul(4)
        rels = compute_dependences(kernel)
        schedule = hand_schedule(kernel, {
            "S": [([0, 0, 1], [0], 0), ([1, 0, 0], [0], 0),
                  ([0, 1, 0], [0], 0)],
        })
        annotate_parallelism(schedule, rels)
        assert [info.parallel for info in schedule.dims] == \
            [False, True, True]
