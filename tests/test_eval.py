"""Tests for the evaluation harness and table formatting."""

import math

import pytest

from repro.eval import (
    EvaluationConfig,
    evaluate_network,
    format_table1,
    format_table2,
    table2_row,
)
from repro.eval.runner import NetworkResult, OperatorResult, evaluate_operator
from repro.eval.tables import geomean_speedup
from repro.pipeline import AkgPipeline
from repro.workloads import operators


def fake_op(name, isl, infl, influenced=True, vectorized=True):
    return OperatorResult(
        name=name, op_class="x",
        times={"isl": isl, "tvm": isl, "novec": infl, "infl": infl},
        influenced=influenced, vectorized=vectorized,
        launches={"isl": 2, "tvm": 2, "novec": 1, "infl": 1})


class TestAggregation:
    def test_counts(self):
        r = NetworkResult("N", [fake_op("a", 2.0, 1.0),
                                fake_op("b", 1.0, 1.0, influenced=False,
                                        vectorized=False)])
        assert r.count_total == 2
        assert r.count_vec == 1
        assert r.count_influenced == 1

    def test_total_time_filtering(self):
        r = NetworkResult("N", [fake_op("a", 2.0, 1.0),
                                fake_op("b", 4.0, 4.0, influenced=False)])
        assert r.total_time("isl") == 6.0
        assert r.total_time("isl", influenced_only=True) == 2.0

    def test_speedup(self):
        r = NetworkResult("N", [fake_op("a", 2.0, 1.0)])
        assert r.speedup("infl") == 2.0

    def test_geomean(self):
        results = [NetworkResult("A", [fake_op("a", 2.0, 1.0)]),
                   NetworkResult("B", [fake_op("b", 8.0, 1.0)])]
        assert geomean_speedup(results) == pytest.approx(4.0)

    def test_geomean_empty(self):
        assert math.isnan(geomean_speedup([]))


class TestFormatting:
    def test_table1_has_every_network(self):
        text = format_table1()
        for name in ("BERT", "LSTM", "MobileNetv2", "ResNet50",
                     "ResNet101", "ResNeXt50", "VGG16"):
            assert name in text

    def test_table2_row_dict(self):
        r = NetworkResult("N", [fake_op("a", 0.002, 0.001)])
        row = table2_row(r)
        assert row["all"]["isl_ms"] == pytest.approx(2.0)
        assert row["all"]["speedup_infl"] == pytest.approx(2.0)
        assert row["total"] == 1

    def test_table2_renders(self):
        r = NetworkResult("N", [fake_op("a", 0.002, 0.001)])
        text = format_table2([r])
        assert "TABLE II" in text
        assert "N" in text.splitlines()[-1]


class TestEndToEnd:
    def test_evaluate_operator_full(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.reduce_producer_op("e2e", rows=256, red=8)
        result = evaluate_operator(pipe, kernel.name, "reduce_producer",
                                   kernel)
        assert set(result.times) == {"isl", "tvm", "novec", "infl"}
        assert all(t > 0 for t in result.times.values())
        assert result.influenced  # fusion changes the compiled result
        assert result.launches["isl"] == 2
        assert result.launches["infl"] == 1

    def test_evaluate_network_limited(self):
        result = evaluate_network(
            "LSTM", EvaluationConfig(limit_per_network=2, sample_blocks=2))
        assert result.count_total == 2
        assert result.total_time("isl") > 0

    def test_progress_callback(self):
        seen = []
        evaluate_network("LSTM",
                         EvaluationConfig(limit_per_network=1,
                                          sample_blocks=2),
                         progress=seen.append)
        assert len(seen) == 1 and "LSTM" in seen[0]

    def test_stratified_limit_keeps_classes(self):
        from repro.workloads import generate_network_suite
        full_classes = {cls for cls, _ in generate_network_suite("ResNet101")}
        limited_classes = {cls for cls, _ in
                           generate_network_suite("ResNet101", limit=6)}
        # Every class present in the full suite appears in the sample
        # (there are at most 5 classes per network).
        assert full_classes == limited_classes


class TestVerifyIntegration:
    """`EvaluationConfig.verify` runs the oracle inside the evaluation loop."""

    def test_evaluate_operator_verify_clean(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.reduce_producer_op("ver_ok", rows=256, red=8)
        result = evaluate_operator(pipe, kernel.name, "reduce_producer",
                                   kernel, verify=True)
        assert result.verify_problems == []
        assert result.status == "ok"

    def test_verify_off_by_default(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.reduce_producer_op("ver_off", rows=256, red=8)
        result = evaluate_operator(pipe, kernel.name, "reduce_producer",
                                   kernel)
        assert result.verify_problems == []

    def test_evaluate_network_with_verify(self):
        result = evaluate_network(
            "LSTM", EvaluationConfig(limit_per_network=1, sample_blocks=2,
                                     verify=True))
        assert all(op.verify_problems == [] for op in result.operators)
        assert all(op.status == "ok" for op in result.operators)

    def test_verify_problems_mark_failed(self, monkeypatch):
        import repro.eval.runner as runner_mod
        from repro.verify import oracle as oracle_mod
        monkeypatch.setattr(oracle_mod, "differential_oracle",
                            lambda kernel, pipeline=None: ["drift detected"])
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.reduce_producer_op("ver_bad", rows=256, red=8)
        result = runner_mod.evaluate_operator(
            pipe, kernel.name, "reduce_producer", kernel, verify=True)
        assert result.verify_problems == ["drift detected"]
        assert result.status == "failed"
