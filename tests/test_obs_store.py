"""Tests for the persistent run store (repro.obs.store)."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.obs.store import (
    RUN_SCHEMA_VERSION,
    RunStore,
    RunStoreError,
    content_hash,
    default_store_root,
    finalize_record,
    new_record,
)

KERNEL_TEXT = """
kernel store_demo (M=64, N=16)
tensor A[M][N]
tensor B[M][N]
S[i: 0..M, j: 0..N]: B[i][j] = f(A[i][j])
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "op.kdl"
    path.write_text(KERNEL_TEXT)
    return str(path)


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "store"))


class TestAppendRead:
    def test_roundtrip(self, store):
        run_id = store.append({"command": "test", "payload": 1})
        record = store.read(run_id)
        assert record["payload"] == 1
        assert record["run_id"] == run_id
        assert record["schema"] == RUN_SCHEMA_VERSION

    def test_append_is_content_addressed(self, store):
        run_id = store.append({"command": "test", "payload": 2})
        expected = content_hash({"command": "test", "payload": 2,
                                 "schema": RUN_SCHEMA_VERSION})
        assert run_id == expected

    def test_identical_records_dedup(self, store):
        a = store.append({"command": "test", "payload": 3})
        b = store.append({"command": "test", "payload": 3})
        assert a == b
        assert len(store.records()) == 1

    def test_new_records_are_distinct_observations(self, store):
        a = store.append(new_record("table2"))
        b = store.append(new_record("table2"))
        # started_at/pid are part of the content, so two observations of
        # the same configuration produce two records.
        assert a != b
        assert len(store.records()) == 2

    def test_records_in_append_order(self, store):
        ids = [store.append({"command": "test", "n": n}) for n in range(5)]
        assert [r["run_id"] for r in store.records()] == ids

    def test_read_missing_raises(self, store):
        with pytest.raises(RunStoreError):
            store.read("doesnotexist")

    def test_future_schema_rejected(self, store):
        store.append({"command": "old", "n": 1})
        with open(store.records_path, "a") as handle:
            future = {"schema": RUN_SCHEMA_VERSION + 1, "run_id": "f" * 16}
            handle.write(json.dumps(future) + "\n")
        assert [r["command"] for r in store.records()] == ["old"]


class TestIndex:
    def test_index_written_and_used(self, store):
        run_id = store.append({"command": "test", "n": 1})
        with open(store.index_path) as handle:
            payload = json.load(handle)
        assert run_id in payload["runs"]
        offset, length = payload["runs"][run_id]
        with open(store.records_path, "rb") as handle:
            handle.seek(offset)
            assert json.loads(handle.read(length))["run_id"] == run_id

    def test_stale_index_falls_back_to_scan(self, store):
        run_id = store.append({"command": "test", "n": 1})
        # Simulate a racing writer: append behind the index's back.
        line = json.dumps({"schema": RUN_SCHEMA_VERSION, "command": "raw",
                           "run_id": "a" * 16}) + "\n"
        with open(store.records_path, "a") as handle:
            handle.write(line)
        assert store._index() == {}  # size mismatch -> treated as stale
        assert store.read(run_id)["run_id"] == run_id
        assert store.read("a" * 16)["command"] == "raw"

    def test_corrupt_index_ignored(self, store):
        run_id = store.append({"command": "test", "n": 1})
        with open(store.index_path, "w") as handle:
            handle.write("not json")
        assert store.read(run_id)["run_id"] == run_id

    def test_torn_tail_line_tolerated(self, store):
        run_id = store.append({"command": "test", "n": 1})
        with open(store.records_path, "a") as handle:
            handle.write('{"schema": 1, "truncat')  # crashed writer
        assert [r["run_id"] for r in store.records()] == [run_id]
        assert store.read(run_id)["run_id"] == run_id


class TestResolve:
    def test_latest_and_back(self, store):
        ids = [store.append({"command": "test", "n": n}) for n in range(3)]
        assert store.resolve("latest")["run_id"] == ids[-1]
        assert store.resolve("latest~1")["run_id"] == ids[-2]
        assert store.resolve("latest~2")["run_id"] == ids[0]

    def test_latest_too_far_back(self, store):
        store.append({"command": "test", "n": 1})
        with pytest.raises(RunStoreError, match="only 1 run"):
            store.resolve("latest~1")

    def test_unique_prefix(self, store):
        run_id = store.append({"command": "test", "n": 1})
        assert store.resolve(run_id[:6])["run_id"] == run_id

    def test_ambiguous_prefix_raises(self, store):
        ids = [store.append({"command": "test", "n": n}) for n in range(40)]
        first_chars = {i[0] for i in ids}
        if len(first_chars) == len(ids):  # pragma: no cover - improbable
            pytest.skip("no colliding first characters drawn")
        shared = next(c for c in first_chars
                      if sum(i.startswith(c) for i in ids) > 1)
        with pytest.raises(RunStoreError, match="ambiguous"):
            store.resolve(shared)

    def test_default_root_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "custom"))
        assert default_store_root() == str(tmp_path / "custom")

    def test_last_matching(self, store):
        store.append({"command": "a", "n": 1})
        wanted = store.append({"command": "b", "n": 2})
        store.append({"command": "a", "n": 3})
        found = store.last_matching(lambda r: r["command"] == "b")
        assert found["run_id"] == wanted


class TestRecordAssembly:
    def test_new_record_fields(self):
        record = new_record("table2", config={"seed": 3})
        assert record["command"] == "table2"
        assert record["config"] == {"seed": 3}
        assert record["status"] == "ok"
        assert record["pid"] == os.getpid()
        assert record["started_at"] > 0

    def test_finalize_attaches_metrics(self):
        record = finalize_record(
            new_record("profile"),
            metrics={"passes": {"schedule": {"seconds": 0.5}},
                     "counters": {"scheduler.ilp_solves": 4.0},
                     "gauges": {}, "histograms": {}},
            wall_seconds=1.25)
        assert record["wall_seconds"] == 1.25
        assert record["passes"]["schedule"]["seconds"] == 0.5
        assert record["metrics"]["counters"]["scheduler.ilp_solves"] == 4.0


_APPEND_SCRIPT = """
import sys
from repro.obs.store import RunStore
store = RunStore(sys.argv[1])
for n in range(25):
    store.append({"command": "parallel", "writer": sys.argv[2], "n": n,
                  "padding": "x" * 512})
"""


class TestConcurrentAppend:
    def test_parallel_writers_produce_intact_lines(self, store, tmp_path):
        """Two processes appending to one store must never interleave
        JSONL lines (single O_APPEND write per record)."""
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
        procs = [subprocess.Popen(
                    [sys.executable, "-c", _APPEND_SCRIPT,
                     store.root, writer],
                    env=env, cwd=str(tmp_path))
                 for writer in ("a", "b")]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        with open(store.records_path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 50
        parsed = [json.loads(line) for line in lines]  # intact JSON only
        by_writer = {}
        for record in parsed:
            by_writer.setdefault(record["writer"], set()).add(record["n"])
        assert by_writer == {"a": set(range(25)), "b": set(range(25))}
        # And the store reads them all back.
        assert len(store.records()) == 50


class TestRecordingUnderFaults:
    """Satellite: run records are still flushed — and marked — when the
    degradation ladder or fault injection fires."""

    def test_degraded_compile_records_degraded_run(self, kernel_file,
                                                   monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           "compile=timeout@variant=infl&influence=True")
        assert main(["compile", kernel_file, "--variant", "infl"]) == 0
        record = RunStore().resolve("latest")
        assert record["status"] == "degraded"
        (operator,) = record["operators"]
        assert operator["degradation"]["infl"] == "no-influence"
        assert operator["schedule_hashes"]["infl"]

    def test_failed_compile_still_flushes_record(self, kernel_file,
                                                 monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        # Every rung of every ladder times out: compilation fails outright,
        # but the run record must still land in the store.
        monkeypatch.setenv("REPRO_FAULT_PLAN", "compile=timeout")
        assert main(["compile", kernel_file, "--variant", "infl"]) == 1
        record = RunStore().resolve("latest")
        assert record["status"] == "failed"
        assert record["metrics"]["counters"].get("resilience.fallback")

    def test_table2_chaos_worker_crash_records_run(self, monkeypatch,
                                                   tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        monkeypatch.setenv("REPRO_FAULT_PLAN", "ci-chaos-1")
        assert main(["table2", "--limit", "1", "--networks", "LSTM",
                     "--jobs", "2"]) == 0
        record = RunStore().resolve("latest")
        assert record["command"] == "table2"
        assert record["status"] == "ok"  # crashes retry deterministically
        assert record["operators"]
        for operator in record["operators"]:
            assert operator["schedule_hashes"]
