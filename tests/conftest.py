"""Shared test configuration.

Pins a deterministic hypothesis profile so the property tests draw the
same examples on every machine: tier-1 and CI results stay reproducible,
and a failing example reported by CI replays locally.  Set
``HYPOTHESIS_PROFILE=dev`` to get fresh random examples while iterating.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_store(tmp_path, monkeypatch):
    """Point the ambient run store at a per-test directory so CLI tests
    never append run records into the developer's ``.repro/runs``."""
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))


try:
    from hypothesis import settings
except ImportError:  # hypothesis is a dev extra; tier-1 runs without it
    pass
else:
    settings.register_profile(
        "repro",
        deadline=None,
        derandomize=True,   # examples derive from the test body, not a seed
        print_blob=True,    # failures print a replayable @reproduce_failure
    )
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))
