"""Tests for the AKG pipeline, its four variants, and the workload zoo."""

import pytest

from repro.codegen.interp import check_semantics
from repro.ir import Kernel
from repro.pipeline import AkgPipeline, VARIANTS
from repro.pipeline.akg import _adjacent_clusters
from repro.workloads import NETWORKS, generate_network_suite, operators
from repro.workloads.networks import table1_rows


@pytest.fixture(scope="module")
def pipeline():
    return AkgPipeline(sample_blocks=2)


class TestClustering:
    def test_identical_spaces_cluster(self):
        k = operators.elementwise_chain_op("c", rows=16, cols=8, length=3)
        clusters = _adjacent_clusters(k)
        assert len(clusters) == 1  # one fused kernel, like isl

    def test_space_change_splits(self):
        k = operators.reduce_producer_op("r", rows=16, red=8)
        clusters = _adjacent_clusters(k)
        assert len(clusters) == 2  # producer nest and consumer nest

    def test_adjacency_preserved(self):
        """Non-adjacent same-space statements must not merge across a
        different-space statement (dependences would reorder)."""
        k = Kernel("mix", params={"M": 8, "N": 4})
        k.add_tensor("A", (8, 4))
        k.add_tensor("B", (8, 4))
        k.add_tensor("R", (8,))
        k.add_tensor("C", (8, 4))
        k.add_statement("E1", [("i", 0, "M"), ("j", 0, "N")],
                        writes=[("B", ["i", "j"])], reads=[("A", ["i", "j"])])
        k.add_statement("Red", [("i", 0, "M"), ("k", 0, "N")],
                        writes=[("R", ["i"])],
                        reads=[("R", ["i"]), ("B", ["i", "k"])])
        k.add_statement("E2", [("i", 0, "M"), ("j", 0, "N")],
                        writes=[("C", ["i", "j"])],
                        reads=[("B", ["i", "j"]), ("R", ["i"])])
        clusters = _adjacent_clusters(k)
        assert [len(c) for c in clusters] == [1, 1, 1]


class TestVariants:
    @pytest.fixture(scope="class")
    def kernel(self):
        return operators.reduce_producer_op("op", rows=64, red=8)

    def test_unknown_variant_rejected(self, pipeline, kernel):
        with pytest.raises(ValueError):
            pipeline.compile(kernel, "magic")

    def test_isl_distributes(self, pipeline, kernel):
        compiled = pipeline.compile(kernel, "isl")
        assert compiled.n_launches == 2
        assert not compiled.vectorized

    def test_tvm_per_statement(self, pipeline, kernel):
        compiled = pipeline.compile(kernel, "tvm")
        assert compiled.n_launches == len(kernel.statements)
        assert not compiled.vectorized

    def test_infl_single_launch(self, pipeline, kernel):
        compiled = pipeline.compile(kernel, "infl")
        assert compiled.n_launches == 1

    def test_novec_matches_infl_schedule(self, pipeline, kernel):
        novec = pipeline.compile(kernel, "novec")
        infl = pipeline.compile(kernel, "infl")
        assert not novec.vectorized
        # Same scheduling: signatures differ only in vector annotations.
        assert novec.n_launches == infl.n_launches

    def test_all_variants_semantics(self, pipeline, kernel):
        small = operators.reduce_producer_op("sem", rows=6, red=3)
        for variant in VARIANTS:
            compiled = pipeline.compile(small, variant)
            for launch in compiled.launches:
                assert check_semantics(launch.kernel, launch.ast) == [], \
                    f"variant {variant} broke semantics"

    def test_measure_produces_time(self, pipeline, kernel):
        timing = pipeline.compile_and_measure(kernel, "infl")
        assert timing.time > 0
        assert timing.dram_bytes > 0


class TestSignature:
    def test_neutral_op_not_influenced(self, pipeline):
        """An operator whose textual order is already optimal and whose
        extent is odd must compile identically under isl and infl."""
        k = operators.elementwise_chain_op("neutral", rows=64, cols=31,
                                           length=1)
        isl = pipeline.compile(k, "isl")
        infl = pipeline.compile(k, "infl")
        assert isl.signature() == infl.signature()

    def test_conversion_is_influenced(self, pipeline):
        k = operators.layout_conversion_op("conv", 2, 16, 8, 8)
        isl = pipeline.compile(k, "isl")
        infl = pipeline.compile(k, "infl")
        assert isl.signature() != infl.signature()


class TestWorkloads:
    def test_table1_registry(self):
        rows = table1_rows()
        assert len(rows) == 7
        assert ("BERT", "nlp", "zhwiki") in rows

    def test_operator_counts_match_paper(self):
        expected = {"BERT": 109, "LSTM": 4, "MobileNetv2": 18,
                    "ResNet50": 17, "ResNet101": 22, "ResNeXt50": 33,
                    "VGG16": 14}
        for name, count in expected.items():
            assert NETWORKS[name].total_operators == count
            suite = generate_network_suite(name)
            assert len(suite) == count

    def test_deterministic_generation(self):
        a = generate_network_suite("VGG16", seed=3)
        b = generate_network_suite("VGG16", seed=3)
        assert [k.name for _, k in a] == [k.name for _, k in b]
        assert [cls for cls, _ in a] == [cls for cls, _ in b]

    def test_seeds_differ(self):
        a = generate_network_suite("VGG16", seed=1)
        b = generate_network_suite("VGG16", seed=2)
        shapes_a = [tuple(k.params.items()) for _, k in a]
        shapes_b = [tuple(k.params.items()) for _, k in b]
        assert shapes_a != shapes_b

    def test_limit_sampling(self):
        suite = generate_network_suite("BERT", limit=10)
        assert len(suite) == 10

    def test_all_generated_kernels_valid(self):
        for network in NETWORKS:
            for _, kernel in generate_network_suite(network, limit=5):
                kernel.validate()

    def test_resnets_carry_conversions(self):
        for network in ("ResNet50", "ResNet101"):
            classes = {cls for cls, _ in generate_network_suite(network)}
            assert any("layout_conversion" in c for c in classes)
