"""Property test: warm-started and replayed solves are bitwise-identical.

Random integer programs (shaped like the scheduler's Farkas-linearized
dimension systems: small bounded integer unknowns plus continuous
multipliers tied in through equalities) are solved three ways —

* cold, via the ``simplex-nowarm`` backend with every reuse disabled,
* warm, offering the cold solution (and decoys) through a
  :class:`WarmStartHandle`,
* replayed, through a content-keyed :class:`SolveCache` hit —

and all three must agree exactly: same feasibility verdict, same
assignment, same objective value.  Runs under the pinned deterministic
hypothesis profile from ``conftest.py``.
"""

from fractions import Fraction

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.backend import resolve_backend
from repro.solver.dedup import SolveCache, use_solve_cache
from repro.solver.problem import Constraint, LinExpr, Problem, var
from repro.solver.warmstart import WarmStartHandle


def _coeff():
    return st.integers(min_value=-3, max_value=3)


@st.composite
def farkas_like_problems(draw):
    """A random small ILP in the scheduler's shape.

    Bounded integer unknowns (schedule coefficients), optional continuous
    multipliers linked through equality constraints (what Farkas
    linearization leaves before presolve), and a handful of inequality
    constraints over the unknowns.
    """
    n_int = draw(st.integers(min_value=1, max_value=4))
    n_cont = draw(st.integers(min_value=0, max_value=2))
    problem = Problem()
    ints = []
    for i in range(n_int):
        name = f"c{i}"
        problem.add_variable(name, lower=0,
                             upper=draw(st.integers(min_value=1, max_value=5)))
        ints.append(name)
    conts = []
    for i in range(n_cont):
        name = f"l{i}"
        problem.add_variable(name, lower=0, integer=False)
        conts.append(name)

    n_rows = draw(st.integers(min_value=1, max_value=5))
    for _ in range(n_rows):
        coeffs = {n: Fraction(draw(_coeff())) for n in ints}
        coeffs = {n: c for n, c in coeffs.items() if c}
        if not coeffs:
            continue
        const = Fraction(draw(st.integers(min_value=-4, max_value=6)))
        sense = draw(st.sampled_from([">=", "<="]))
        problem.add_constraint(Constraint(LinExpr(coeffs, const), sense))
    # Tie each multiplier to the integer unknowns with an equality, the way
    # Farkas multipliers enter the system.
    for name in conts:
        coeffs = {n: Fraction(draw(_coeff())) for n in ints}
        coeffs[name] = Fraction(-1)
        const = Fraction(draw(st.integers(min_value=-2, max_value=2)))
        problem.add_constraint(Constraint(LinExpr(coeffs, const), "=="))

    objective = LinExpr({n: Fraction(draw(st.integers(min_value=0, max_value=3)))
                         for n in ints})
    if not objective.coeffs:
        objective = var(ints[0])
    return problem, objective


@st.composite
def decoy_assignments(draw, names):
    return {n: Fraction(draw(st.integers(min_value=-1, max_value=6)))
            for n in names}


@given(data=st.data(), case=farkas_like_problems())
@settings(max_examples=60, deadline=None)
def test_warm_and_replayed_solves_match_cold(data, case):
    problem, objective = case
    cold = problem.clone().solve(objective,
                                 backend=resolve_backend("simplex-nowarm"))

    # Warm: offer the cold optimum plus arbitrary decoys (feasible or not —
    # infeasible candidates must simply be ignored).
    handle = WarmStartHandle()
    handle.offer(data.draw(decoy_assignments(problem.variables)))
    if cold is not None:
        handle.offer(cold)
    handle.offer(data.draw(decoy_assignments(problem.variables)))
    warm = problem.clone().solve(objective, warm=handle,
                                 backend=resolve_backend("simplex"))
    assert warm == cold
    if cold is not None:
        assert objective.evaluate(warm) == objective.evaluate(cold)

    # Replay: identical content solved twice inside one cache scope; the
    # second answer comes from the cache and must be value-identical.
    with use_solve_cache(SolveCache()) as cache:
        first = problem.clone().solve(objective,
                                      backend=resolve_backend("simplex"))
        second = problem.clone().solve(objective,
                                       backend=resolve_backend("simplex"))
    assert cache.hits >= 1
    assert first == cold
    assert second == first


@given(case=farkas_like_problems())
@settings(max_examples=30, deadline=None)
def test_lexmin_warm_matches_cold(case):
    problem, objective = case
    levels = [objective, LinExpr({n: Fraction(1) for n in problem.variables
                                  if n.startswith("c")})]
    cold = problem.clone().lexmin(levels,
                                  backend=resolve_backend("simplex-nowarm"))
    handle = WarmStartHandle()
    if cold is not None:
        handle.offer(cold)
    warm = problem.clone().lexmin(levels, warm=handle,
                                  backend=resolve_backend("simplex"))
    assert warm == cold
