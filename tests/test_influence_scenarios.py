"""Tests for Algorithm 2 (influenced dimension scenarios) and the tree builder."""

import pytest

from repro.influence import (
    CostWeights,
    build_influence_tree,
    build_scenarios,
    dimension_cost,
)
from repro.influence.scenarios import (
    build_statement_scenarios,
    iterator_extent,
)
from repro.ir import Kernel
from repro.ir.examples import matmul, running_example, transpose_add
from repro.ir.types import FLOAT64


class TestIteratorExtent:
    def test_rectangular(self):
        k = running_example(16)
        s = k.statement("Y")
        assert iterator_extent(s, "j", k.params) == 16

    def test_triangular_max(self):
        k = Kernel("tri", params={"N": 8})
        k.add_tensor("A", (8, 8))
        s = k.add_statement("S", [("i", 0, "N"), ("j", 0, "i + 1")],
                            writes=[("A", ["i", "j"])])
        # j ranges over at most 8 values (when i == 7).
        assert iterator_extent(s, "j", k.params) == 8


class TestCost:
    def test_store_vectorization_beats_load(self):
        """w1 > w2: a stride-1 store outweighs a stride-1 load."""
        k = Kernel("t", params={"N": 64})
        k.add_tensor("A", (64, 64))
        k.add_tensor("B", (64, 64))
        s = k.add_statement("S", [("i", 0, "N"), ("j", 0, "N")],
                            writes=[("B", ["i", "j"])],
                            reads=[("A", ["j", "i"])])
        w = CostWeights()
        # Innermost j: store stride 1; innermost i: load stride 1.
        cost_j = dimension_cost(w, s.accesses, 1024, 64, "j", True)
        cost_i = dimension_cost(w, s.accesses, 1024, 64, "i", True)
        assert cost_j > cost_i

    def test_broadcast_reads_count_as_vectorizable(self):
        k = running_example(64)
        y = k.statement("Y")
        w = CostWeights()
        # Along j: C store stride 1, C/D reads stride 1/1, B read stride 0.
        cost = dimension_cost(w, y.accesses, 1024, 64, "j", True)
        # w1*1 + w2*3 (C read, B broadcast, D read) + w3/1 + w4*|{C,C,D}| + F-term
        assert cost > CostWeights().w1  # store term present plus more

    def test_thread_term_zero_when_big(self):
        k = running_example(64)
        y = k.statement("Y")
        w = CostWeights(w1=0, w2=0, w3=0, w4=0, w5=1)
        big = dimension_cost(w, y.accesses, 32, 64, "j", False)
        small = dimension_cost(w, y.accesses, 1024, 64, "j", False)
        assert big == 0
        assert small == 64 / 1024


class TestScenarios:
    def test_running_example_innermost_j(self):
        k = running_example(64)
        scenarios = build_scenarios(k)
        primary = scenarios["Y"][0]
        assert primary.innermost == "j"
        assert primary.vectorizable
        assert primary.vector_width == 4  # float32, extent 64 % 4 == 0

    def test_scenario_length_cap(self):
        k = running_example(64)
        for scenario in build_scenarios(k)["Y"]:
            assert len(scenario.dims) <= 3

    def test_alternatives_differ_in_innermost(self):
        k = running_example(64)
        inner = [s.innermost for s in build_scenarios(k)["Y"]]
        assert len(set(inner)) == len(inner)

    def test_transpose_prefers_store_side(self):
        k = transpose_add(64)
        scenarios = build_scenarios(k)
        # T writes B[i][j] and reads A[j][i]: store side means innermost j.
        assert scenarios["T"][0].innermost == "j"

    def test_vector_width_respects_dtype(self):
        k = Kernel("d64", params={"N": 64})
        k.add_tensor("A", (64, 64), FLOAT64)
        k.add_tensor("B", (64, 64), FLOAT64)
        k.add_statement("S", [("i", 0, "N"), ("j", 0, "N")],
                        writes=[("B", ["i", "j"])], reads=[("A", ["i", "j"])])
        scenarios = build_scenarios(k)
        assert scenarios["S"][0].vector_width == 2  # double2 only

    def test_odd_extent_not_vectorizable(self):
        k = Kernel("odd", params={"N": 63})
        k.add_tensor("A", (63, 63))
        k.add_tensor("B", (63, 63))
        k.add_statement("S", [("i", 0, "N"), ("j", 0, "N")],
                        writes=[("B", ["i", "j"])], reads=[("A", ["i", "j"])])
        scenarios = build_scenarios(k)
        assert scenarios["S"][0].vector_width == 0


class TestTreeBuilder:
    def test_tree_shape_running_example(self):
        k = running_example(64)
        tree = build_influence_tree(k)
        tree.validate()
        assert tree.root.children  # at least one scenario branch
        # Highest-priority branch is the fused variant.
        assert "fused" in tree.root.children[0].label

    def test_leaf_marks_vector(self):
        k = running_example(64)
        tree = build_influence_tree(k)
        node = tree.root.children[0]
        while node.children:
            node = node.children[0]
        assert node.mark_vector
        assert node.vector_width == 4

    def test_branch_cap(self):
        k = running_example(64)
        tree = build_influence_tree(k, max_branches=2)

        def count_leaves(node):
            if not node.children:
                return 1
            return sum(count_leaves(c) for c in node.children)
        assert count_leaves(tree.root) <= 2

    def test_single_statement_no_fusion_variant(self):
        k = matmul(32)
        tree = build_influence_tree(k)
        for child in tree.root.children:
            assert "solo" in child.label

    def test_prefix_merging(self):
        """Fused and solo variants of one scenario share no prefix (their
        depth-0 constraints differ), but identical chains merge."""
        k = running_example(64)
        tree = build_influence_tree(k)
        # Re-building produces the same number of nodes (deterministic).
        tree2 = build_influence_tree(k)
        assert tree.n_nodes() == tree2.n_nodes()
