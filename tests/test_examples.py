"""Smoke tests: the runnable examples execute end to end.

The heavyweight examples (transpose shapes, autotuning sweeps) are covered
by the benchmarks; here we run the two fast ones and check their output
tells the story they promise.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "baseline (isl-style)" in out
    assert "influenced (+ vector types)" in out
    assert "speedup over baseline" in out


def test_constraint_tree_explorer(capsys):
    out = run_example("constraint_tree_explorer.py", capsys)
    assert "sibling fallback" in out
    assert "influence abandoned: True" in out


def test_examples_exist_and_are_executable():
    expected = {"quickstart.py", "running_example.py",
                "transpose_resnet.py", "constraint_tree_explorer.py",
                "tile_autotune.py"}
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= found
