"""Direct unit tests for ScheduleRow / Schedule containers."""

from fractions import Fraction

import pytest

from repro.ir.examples import matmul, running_example
from repro.schedule import Schedule, ScheduleRow
from repro.schedule.functions import DimensionInfo


@pytest.fixture
def kernel():
    return running_example(4)


def row(statement, params, iters, pars, const):
    return ScheduleRow.from_coeffs(statement, params, iters, pars, const)


class TestScheduleRow:
    def test_as_expr(self, kernel):
        x = kernel.statement("X")
        r = row(x, ["N"], [1, 2], [3], 4)
        expr = r.as_expr()
        assert expr.coeffs["i"] == 1
        assert expr.coeffs["k"] == 2
        assert expr.coeffs["N"] == 3
        assert expr.const == 4

    def test_evaluate(self, kernel):
        x = kernel.statement("X")
        r = row(x, ["N"], [1, 0], [1], 2)
        value = r.evaluate({"i": Fraction(3), "k": Fraction(9)}, {"N": 4})
        assert value == 3 + 4 + 2

    def test_scalar(self, kernel):
        x = kernel.statement("X")
        r = ScheduleRow.scalar(x, ["N"], 7)
        assert r.is_scalar and r.const == 7

    def test_coefficient_of_unknown(self, kernel):
        x = kernel.statement("X")
        r = row(x, ["N"], [1, 0], [0], 0)
        assert r.coefficient_of("zzz") == 0

    def test_arity_checks(self, kernel):
        x = kernel.statement("X")
        with pytest.raises(ValueError):
            ScheduleRow(("i", "k"), (1,), ("N",), (0,), 0)

    def test_param_coeff_merges_with_iter_name_clash(self, kernel):
        # A parameter named like nothing here; just check param path.
        x = kernel.statement("X")
        r = row(x, ["N"], [0, 0], [2], 0)
        assert r.as_expr().coeffs == {"N": Fraction(2)}


class TestSchedule:
    def build(self, kernel):
        schedule = Schedule(kernel.statements, ["N"])
        x = kernel.statement("X")
        y = kernel.statement("Y")
        schedule.append_dimension(
            {"X": row(x, ["N"], [1, 0], [0], 0),
             "Y": row(y, ["N"], [1, 0, 0], [0], 0)},
            DimensionInfo(coincident=True, band=0))
        schedule.append_dimension(
            {"X": row(x, ["N"], [0, 1], [0], 0),
             "Y": row(y, ["N"], [0, 0, 1], [0], 0)},
            DimensionInfo(band=0))
        schedule.append_dimension(
            {"X": ScheduleRow.scalar(x, ["N"], 0),
             "Y": row(y, ["N"], [0, 1, 0], [0], 0)},
            DimensionInfo(band=1))
        return schedule

    def test_missing_statement_rejected(self, kernel):
        schedule = Schedule(kernel.statements, ["N"])
        x = kernel.statement("X")
        with pytest.raises(ValueError):
            schedule.append_dimension({"X": row(x, ["N"], [1, 0], [0], 0)})

    def test_rank_and_completeness(self, kernel):
        schedule = self.build(kernel)
        assert schedule.rank_of("X") == 2
        assert schedule.rank_of("Y") == 3
        assert schedule.is_complete()

    def test_drop_dimensions(self, kernel):
        schedule = self.build(kernel)
        schedule.drop_dimensions_from(1)
        assert schedule.n_dims == 1
        assert len(schedule.rows_of("Y")) == 1

    def test_bands(self, kernel):
        schedule = self.build(kernel)
        assert schedule.bands() == [[0, 1], [2]]

    def test_vector_marking(self, kernel):
        schedule = self.build(kernel)
        assert schedule.vector_dim() is None
        schedule.mark_vector(2)
        assert schedule.vector_dim() == 2

    def test_date_of(self, kernel):
        schedule = self.build(kernel)
        date = schedule.date_of("Y", {"i": Fraction(1), "j": Fraction(2),
                                      "k": Fraction(3)}, {"N": 4})
        assert date == (1, 3, 2)

    def test_pretty_mentions_flags(self, kernel):
        schedule = self.build(kernel)
        text = schedule.pretty()
        assert "coincident" in text and "band1" in text

    def test_statement_lookup(self, kernel):
        schedule = self.build(kernel)
        assert schedule.statement("X").name == "X"
        with pytest.raises(KeyError):
            schedule.statement("nope")
