"""Tests for the warp-level kernel simulator."""

import pytest

from repro.codegen import generate_ast, map_to_gpu, vectorize
from repro.gpu import V100, simulate_kernel
from repro.gpu.arch import GpuArch
from repro.gpu.simulator import _sample_block_ids
from repro.influence import build_influence_tree
from repro.ir import Kernel
from repro.ir.examples import elementwise_chain
from repro.schedule import InfluencedScheduler
from repro.workloads import operators


def compile_mapped(kernel, influenced=False, enable_vec=True,
                   max_threads=64):
    scheduler = InfluencedScheduler(kernel)
    tree = build_influence_tree(kernel) if influenced else None
    schedule = scheduler.schedule(tree)
    ast = generate_ast(kernel, schedule)
    ast = vectorize(ast, kernel, schedule, scheduler.relations,
                    enable=enable_vec)
    return map_to_gpu(kernel, ast, schedule, max_threads=max_threads)


def copy_kernel(rows=256, cols=64):
    k = Kernel("copy", params={"M": rows, "N": cols})
    k.add_tensor("A", (rows, cols))
    k.add_tensor("B", (rows, cols))
    k.add_statement("S", [("i", 0, "M"), ("j", 0, "N")],
                    writes=[("B", ["i", "j"])], reads=[("A", ["i", "j"])])
    return k


class TestSampling:
    def test_small_grid_full(self):
        ids, warmup = _sample_block_ids(3, 8)
        assert ids == [0, 1, 2] and warmup == 0

    def test_consecutive_run(self):
        ids, warmup = _sample_block_ids(1000, 4)
        assert warmup == 1
        assert len(ids) == 5
        assert ids == list(range(ids[0], ids[0] + 5))


class TestCopyKernel:
    def test_exact_traffic(self):
        """A coalesced 2D copy moves exactly 2 tensors' worth of bytes."""
        mapped = compile_mapped(copy_kernel(256, 64))
        profile = simulate_kernel(mapped, sample_blocks=4)
        ideal = 2 * 256 * 64 * 4
        assert ideal * 0.9 <= profile.dram_bytes <= ideal * 1.2

    def test_coalescing_efficiency_near_one(self):
        mapped = compile_mapped(copy_kernel(256, 64))
        profile = simulate_kernel(mapped, sample_blocks=4)
        assert profile.coalescing_efficiency > 0.8

    def test_vectorized_fewer_instructions(self):
        # Wide rows keep both versions at full warps, exposing the 4x.
        plain = simulate_kernel(compile_mapped(copy_kernel(64, 512),
                                               influenced=True,
                                               enable_vec=False),
                                sample_blocks=4)
        vec = simulate_kernel(compile_mapped(copy_kernel(64, 512),
                                             influenced=True,
                                             enable_vec=True),
                              sample_blocks=4)
        assert vec.warp_mem_instructions < plain.warp_mem_instructions
        # Vector width 4: roughly 4x fewer memory instructions.
        assert vec.warp_mem_instructions <= plain.warp_mem_instructions / 3

    def test_same_traffic_with_vectors(self):
        plain = simulate_kernel(compile_mapped(copy_kernel(), influenced=True,
                                               enable_vec=False),
                                sample_blocks=4)
        vec = simulate_kernel(compile_mapped(copy_kernel(), influenced=True,
                                             enable_vec=True),
                              sample_blocks=4)
        assert abs(vec.dram_bytes - plain.dram_bytes) <= plain.dram_bytes * 0.2


class TestTimeModel:
    def test_time_includes_launch_overhead(self):
        mapped = compile_mapped(copy_kernel(64, 32))
        profile = simulate_kernel(mapped)
        assert profile.time >= V100.launch_overhead_s

    def test_dram_bound_scaling(self):
        small = simulate_kernel(compile_mapped(copy_kernel(256, 64)),
                                sample_blocks=4)
        big = simulate_kernel(compile_mapped(copy_kernel(1024, 64)),
                              sample_blocks=4)
        assert big.dram_bytes > small.dram_bytes * 3

    def test_underutilized_grid_slower_per_work(self):
        """A 1-block launch can use only one SM."""
        mapped = compile_mapped(copy_kernel(64, 64), max_threads=64)
        profile = simulate_kernel(mapped)
        assert profile.active_sms <= V100.sm_count


class TestAmplification:
    def test_layout_conversion_amplifies_baseline(self):
        """The NCHW->NHWC baseline pays write amplification; the influenced
        schedule does not (the core Table II mechanism)."""
        k = operators.layout_conversion_op("conv", 2, 64, 64, 64)
        isl = simulate_kernel(compile_mapped(k, influenced=False),
                              sample_blocks=8)
        infl = simulate_kernel(compile_mapped(k, influenced=True),
                               sample_blocks=8)
        assert isl.dram_bytes > infl.dram_bytes * 1.5

    def test_reduction_accumulator_combines(self):
        """A fused reduction's accumulator must not multiply DRAM traffic
        (write-back combining in L1)."""
        k = operators.reduce_producer_op("red", rows=2048, red=16)
        infl = simulate_kernel(compile_mapped(k, influenced=True),
                               sample_blocks=4)
        # Ideal: A+B (2048x16x4 each) + C + D -> ~0.5MB; amplified
        # accumulator traffic would be 16x larger.
        assert infl.dram_bytes < 3 * (2 * 2048 * 16 * 4 + 2048 * 4 +
                                      2048 * 16 * 4)


class TestProfileDerived:
    def test_flops_counted(self):
        mapped = compile_mapped(copy_kernel(64, 32))
        profile = simulate_kernel(mapped)
        assert profile.flops > 0

    def test_cache_counters(self):
        k = operators.reduce_producer_op("red", rows=512, red=16)
        profile = simulate_kernel(compile_mapped(k, influenced=True),
                                  sample_blocks=2)
        assert profile.cache_hits > 0  # accumulator + B reuse
