"""Metamorphic relations: the transformations are semantics-preserving and
the checker holds on real operators (and flags rigged compiles)."""

import random
from types import SimpleNamespace

import pytest

from repro.verify.generator import random_spec, spec_to_kernel
from repro.verify.metamorphic import (
    _compare_compiles,
    fresh_renaming,
    metamorphic_check,
    rename_iterators,
    reorder_statements,
    scale_spec,
)
from repro.workloads import operators


def small_op():
    return operators.reduce_producer_op("meta_red", rows=16, red=4)


class TestTransformations:
    def test_fresh_renaming_avoids_collisions(self):
        kernel = small_op()
        mapping = fresh_renaming(kernel)
        iterators = {it for s in kernel.statements for it in s.iterators}
        assert set(mapping) == iterators
        taken = set(kernel.params) | set(kernel.tensors) | iterators
        assert not set(mapping.values()) & taken
        assert len(set(mapping.values())) == len(mapping)

    def test_rename_produces_valid_equivalent_kernel(self):
        kernel = small_op()
        mapping = fresh_renaming(kernel)
        renamed = rename_iterators(kernel, mapping)
        renamed.validate()
        for original, copy in zip(kernel.statements, renamed.statements):
            assert copy.iterators == [mapping[it]
                                      for it in original.iterators]
            assert copy.betas == original.betas
            # Same iteration count, just different bound-variable names.
            assert len(copy.iteration_points(renamed.params)) \
                == len(original.iteration_points(kernel.params))

    def test_reorder_keeps_betas(self):
        kernel = small_op()
        reordered = reorder_statements(
            kernel, list(range(len(kernel.statements)))[::-1])
        reordered.validate()
        by_name = {s.name: s for s in kernel.statements}
        for s in reordered.statements:
            assert s.betas == by_name[s.name].betas

    def test_scale_spec_scales_params_and_extents(self):
        spec = random_spec(random.Random(3), index=3)
        scaled = scale_spec(spec, factor=2)
        assert scaled.params == tuple((p, 2 * v) for p, v in spec.params)
        for (_, shape), (_, scaled_shape) in zip(spec.tensors,
                                                 scaled.tensors):
            assert scaled_shape == tuple(2 * d for d in shape)
        spec_to_kernel(scaled).validate()


class TestCheck:
    def test_relations_hold_on_operator(self):
        assert metamorphic_check(small_op()) == []

    def test_relations_hold_on_spec_with_scaling(self):
        spec = random_spec(random.Random(1), index=1)
        assert metamorphic_check(spec) == []

    def test_degradation_rung_change_is_flagged(self):
        problems = []
        base = SimpleNamespace(degradation="none", launches=[])
        worse = SimpleNamespace(degradation="no-influence", launches=[])
        _compare_compiles("rigged", base, worse, problems)
        assert problems == ["rigged: degradation rung changed "
                            "('none' -> 'no-influence')"]

    def test_launch_count_change_is_flagged(self):
        from repro.pipeline.akg import AkgPipeline
        compiled = AkgPipeline().compile(small_op(), "isl")
        dropped = SimpleNamespace(degradation=compiled.degradation,
                                  launches=[])
        problems = []
        _compare_compiles("rigged", compiled, dropped, problems)
        assert problems == [f"rigged: launch count changed "
                            f"({len(compiled.launches)} -> 0)"]
