"""Tests for the Farkas linearization machinery."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.farkas import (
    SymbolicAffineForm,
    _eliminate_equalities,
    add_farkas_nonneg,
)
from repro.sets import Polyhedron, var
from repro.solver.problem import LinExpr, Problem


def box(dims, lo, hi):
    cs = []
    for d in dims:
        cs.append(var(d) >= lo)
        cs.append(var(d) <= hi)
    return Polyhedron(dims, cs)


class TestSymbolicForm:
    def test_add_term_accumulates(self):
        form = SymbolicAffineForm()
        form.add_term("x", var("a"))
        form.add_term("x", var("b"))
        assert form.coefficient("x") == var("a") + var("b")

    def test_copy_independent(self):
        form = SymbolicAffineForm({"x": var("a")}, var("c"))
        clone = form.copy()
        clone.add_term("x", var("b"))
        assert form.coefficient("x") == var("a")


class TestEqualityElimination:
    def test_substitutes_into_form(self):
        # x == y on dims (x, y); form a*x + b*y  ->  (a+b)*y.
        dims, ineqs, form = _eliminate_equalities(
            ["x", "y"], [var("x") - var("y")], [],
            SymbolicAffineForm({"x": var("a"), "y": var("b")}))
        assert len(dims) == 1
        remaining = dims[0]
        assert form.coefficient(remaining) == var("a") + var("b")

    def test_inconsistent_constant_rejected(self):
        with pytest.raises(ValueError):
            _eliminate_equalities(["x"], [LinExpr(const=1)], [],
                                  SymbolicAffineForm())

    def test_trivial_inequality_dropped(self):
        dims, ineqs, _ = _eliminate_equalities(
            ["x"], [], [LinExpr(const=5)], SymbolicAffineForm())
        assert ineqs == []


class TestFarkasSoundness:
    def solve_coeffs(self, poly, lower=-4, upper=4):
        """Build the Farkas system for ``sum c_d d + c0 >= 0`` on poly with
        the coefficients as bounded unknowns."""
        problem = Problem()
        coeff_vars = {}
        for d in poly.dims:
            coeff_vars[d] = problem.add_variable(f"c_{d}", lower=lower,
                                                 upper=upper)
        c0 = problem.add_variable("c0", lower=lower, upper=upper)
        form = SymbolicAffineForm({d: coeff_vars[d] for d in poly.dims}, c0)
        add_farkas_nonneg(problem, "t", poly, form)
        return problem, coeff_vars, c0

    def test_valid_form_feasible(self):
        poly = box(["x"], 0, 10)
        problem, cv, c0 = self.solve_coeffs(poly)
        # c_x = 1, c0 = 0: x >= 0 on [0, 10] must be certifiable.
        problem.add_constraint(cv["x"].eq(1))
        problem.add_constraint(c0.eq(0))
        assert problem.solve() is not None

    def test_invalid_form_infeasible(self):
        poly = box(["x"], 0, 10)
        problem, cv, c0 = self.solve_coeffs(poly)
        # -x + 5 is negative at x=10: not nonneg on the box.
        problem.add_constraint(cv["x"].eq(-1))
        problem.add_constraint(c0.eq(5))
        assert problem.solve() is None

    def test_negative_certificate_needs_negative_allowed(self):
        # x - 10 <= 0 on [0,10]: 10 - x >= 0 certifiable.
        poly = box(["x"], 0, 10)
        problem, cv, c0 = self.solve_coeffs(poly, lower=-16, upper=16)
        problem.add_constraint(cv["x"].eq(-1))
        problem.add_constraint(c0.eq(10))
        assert problem.solve() is not None

    @given(st.integers(-3, 3), st.integers(-3, 3), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_farkas_matches_bruteforce(self, a, b, c0):
        """Property: the Farkas system is feasible with pinned coefficients
        exactly when the form is nonnegative on every integer point."""
        poly = box(["x", "y"], 0, 3)
        truly_nonneg = all(a * x + b * y + c0 >= 0
                           for x in range(4) for y in range(4))
        problem, cv, c0_var = self.solve_coeffs(poly)
        problem.add_constraint(cv["x"].eq(a))
        problem.add_constraint(cv["y"].eq(b))
        problem.add_constraint(c0_var.eq(c0))
        feasible = problem.solve() is not None
        # Farkas over a box (integer vertices) is exact.
        assert feasible == truly_nonneg

    def test_equality_heavy_polyhedron(self):
        # Dependence-style set: x == y, 0 <= y <= 7.
        poly = Polyhedron(["x", "y"],
                          [(var("x") - var("y")).eq(0),
                           var("y") >= 0, var("y") <= 7])
        problem, cv, c0 = self.solve_coeffs(poly)
        # x - y is identically 0 on the set: certifiable.
        problem.add_constraint(cv["x"].eq(1))
        problem.add_constraint(cv["y"].eq(-1))
        problem.add_constraint(c0.eq(0))
        assert problem.solve() is not None

    def test_multiplier_count_reduced_by_equalities(self):
        plain = box(["x", "y"], 0, 3)
        fused = plain.with_constraints([(var("x") - var("y")).eq(0)])
        p1 = Problem()
        form1 = SymbolicAffineForm({}, p1.add_variable("c", lower=0, upper=1))
        n_plain = add_farkas_nonneg(p1, "a", plain, form1.copy())
        p2 = Problem()
        form2 = SymbolicAffineForm({}, p2.add_variable("c", lower=0, upper=1))
        n_fused = add_farkas_nonneg(p2, "a", fused, form2)
        # Eliminating the equality drops a dimension and its constraints.
        assert n_fused <= n_plain
