"""Supervised parallel evaluation: heartbeats, hung-task kill, retry.

The hang/OOM tests drive real worker processes through the
``worker.hang`` / ``worker.oom`` fault sites and assert the supervisor's
contract: a hung worker is killed within the task timeout, lost tasks
are retried with deterministic backoff, results stay bitwise-identical
to a clean serial run, and a task that hangs through every retry becomes
a *failed operator* — the run terminates, it never wedges.
"""

import time

import pytest

from repro.eval.runner import EvaluationConfig, evaluate_network
from repro.eval.supervisor import (
    MIN_DERIVED_TIMEOUT_S,
    resolve_task_timeout,
    retry_backoff,
)


def _counters(result) -> dict:
    return result.metrics.get("counters", {})


class TestTimeoutAndBackoff:
    def test_explicit_timeout_wins(self):
        config = EvaluationConfig(task_timeout_s=7.5, deadline_ms=100.0)
        assert resolve_task_timeout(config) == 7.5

    def test_derived_from_deadline_with_headroom(self):
        config = EvaluationConfig(deadline_ms=2000.0)
        timeout = resolve_task_timeout(config)
        # 4 variants x 2s deadline x 8x headroom.
        assert timeout == pytest.approx(64.0)

    def test_derived_timeout_floored(self):
        config = EvaluationConfig(deadline_ms=1.0)
        assert resolve_task_timeout(config) == MIN_DERIVED_TIMEOUT_S

    def test_no_deadline_means_no_timeout(self):
        assert resolve_task_timeout(EvaluationConfig()) is None

    def test_backoff_is_deterministic_and_exponential(self):
        assert retry_backoff(0.1, 1) == pytest.approx(0.1)
        assert retry_backoff(0.1, 2) == pytest.approx(0.2)
        assert retry_backoff(0.1, 3) == pytest.approx(0.4)
        assert retry_backoff(0.1, 0) == 0.0


class TestHealthySupervisedRun:
    def test_matches_serial_with_no_extra_counters(self):
        config = EvaluationConfig(limit_per_network=2,
                                  task_timeout_s=30.0)
        serial = evaluate_network("LSTM", config)
        parallel = evaluate_network("LSTM", config, jobs=2)
        assert [op.times for op in serial.operators] == \
               [op.times for op in parallel.operators]
        assert all(op.attempts == 1 and not op.kill_reason
                   for op in parallel.operators)
        # A healthy run contributes no supervisor counters at all, so
        # serial = parallel metric parity holds exactly.
        assert not any(name.startswith("resilience.supervisor")
                       for name in _counters(parallel))


class TestHungWorkerKill:
    TIMEOUT_S = 1.0

    def test_hang_killed_within_timeout_and_retried(self, monkeypatch):
        config = EvaluationConfig(limit_per_network=2, jobs=2,
                                  task_timeout_s=self.TIMEOUT_S,
                                  retries=1, retry_backoff_s=0.05)
        clean = evaluate_network("LSTM", config)  # serial: faults inert
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker.hang=3600@attempt=0")
        started = time.monotonic()
        result = evaluate_network("LSTM", config, jobs=2)
        elapsed = time.monotonic() - started
        # Both operators hung once, were killed within the task timeout,
        # and succeeded on the retry — far sooner than the 3600s sleep.
        assert elapsed < 20 * self.TIMEOUT_S
        assert [op.times for op in result.operators] == \
               [op.times for op in clean.operators]
        assert all(op.status == "ok" for op in result.operators)
        assert all(op.attempts == 2 for op in result.operators)
        assert all(op.kill_reason == "hung" for op in result.operators)
        counters = _counters(result)
        assert counters["resilience.supervisor.kills"] == 2
        assert counters["resilience.supervisor.retries"] == 2
        assert counters["resilience.supervisor.backoff_seconds"] == \
            pytest.approx(0.1)

    def test_persistent_hang_fails_operator_not_run(self, monkeypatch):
        config = EvaluationConfig(limit_per_network=1, jobs=2,
                                  task_timeout_s=self.TIMEOUT_S,
                                  retries=1, retry_backoff_s=0.05)
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker.hang=3600")
        result = evaluate_network("LSTM", config, jobs=2)
        # The run terminated (this test finishing is the point) and the
        # exhausted task is on the record as failed, never re-run in the
        # parent where it would hang the whole process.
        (op,) = result.operators
        assert op.status == "failed"
        assert "hung 2 time(s)" in op.error
        assert _counters(result)["resilience.supervisor.gave_up"] == 1


class TestWorkerDeath:
    def test_oom_killed_worker_retried(self, monkeypatch):
        config = EvaluationConfig(limit_per_network=2, jobs=2,
                                  retries=2, retry_backoff_s=0.05)
        clean = evaluate_network("LSTM", config)
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker.oom=8@attempt=0")
        result = evaluate_network("LSTM", config, jobs=2)
        assert [op.times for op in result.operators] == \
               [op.times for op in clean.operators]
        assert all(op.status == "ok" for op in result.operators)
        assert all(op.attempts == 2 for op in result.operators)
        assert all("worker-died(exit 137)" in op.kill_reason
                   for op in result.operators)
        counters = _counters(result)
        assert counters["resilience.supervisor.worker_deaths"] == 2
        assert counters["resilience.supervisor.respawns"] >= 1

    def test_crash_every_attempt_falls_back_to_parent(self, monkeypatch):
        # Retries exhausted by deaths -> one serial parent evaluation on
        # a fresh pipeline (fresh SolveBudget), preserving results.
        config = EvaluationConfig(limit_per_network=1, jobs=2,
                                  retries=1, retry_backoff_s=0.05,
                                  deadline_ms=10_000.0)
        clean = evaluate_network("LSTM", config)
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker=crash")
        result = evaluate_network("LSTM", config, jobs=2)
        assert [op.times for op in result.operators] == \
               [op.times for op in clean.operators]
        (op,) = result.operators
        assert op.status == "ok"
        counters = _counters(result)
        assert counters["resilience.worker_retries"] == 1
        assert counters["resilience.supervisor.worker_deaths"] == 2


class TestCliDegradedExit:
    ARGS = ["--quiet", "table2", "--networks", "LSTM", "--limit", "1",
            "--jobs", "2", "--task-timeout", "1", "--retries", "1",
            "--retry-backoff", "0.05", "--no-checkpoint"]

    def test_supervisor_kill_degrades_run(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker.hang=3600@attempt=0")
        assert main(self.ARGS) == 1
        capsys.readouterr()
        assert main(self.ARGS + ["--allow-degraded"]) == 0
        capsys.readouterr()
