"""Focused tests for the backend vectorization pass."""

import pytest

from repro.codegen import generate_ast, vectorize
from repro.codegen.ast import Loop, walk
from repro.codegen.interp import check_semantics
from repro.codegen.vectorize import _unguarded_calls
from repro.influence import build_influence_tree
from repro.ir import Kernel
from repro.ir.types import FLOAT64, INT8
from repro.schedule import InfluencedScheduler


def influenced_ast(kernel, enable=True):
    scheduler = InfluencedScheduler(kernel)
    tree = build_influence_tree(kernel)
    schedule = scheduler.schedule(tree)
    ast = generate_ast(kernel, schedule)
    return vectorize(ast, kernel, schedule, scheduler.relations,
                     enable=enable), schedule


def copy_kernel(cols=16, dtype=None, carried=False):
    kwargs = {} if dtype is None else {"dtype": dtype}
    kernel = Kernel("v", params={"M": 8, "N": cols})
    kernel.add_tensor("A", (8, cols), *([] if dtype is None else [dtype]))
    kernel.add_tensor("B", (8, cols), *([] if dtype is None else [dtype]))
    reads = [("A", ["i", "j - 1" if carried else "j"])]
    if carried:
        reads = [("B", ["i", "j - 1"])]
    kernel.add_statement("S", [("i", 0, "M"),
                               ("j", 1 if carried else 0, "N")],
                         writes=[("B", ["i", "j"])], reads=reads)
    return kernel


class TestStripMining:
    def test_vector_loop_created(self):
        ast, _ = influenced_ast(copy_kernel(16))
        vec_loops = [n for n in walk(ast) if isinstance(n, Loop) and n.vector]
        assert len(vec_loops) == 1
        assert vec_loops[0].vector_width == 4
        # The outer strip exists and is parallel (mappable).
        outer = [n for n in walk(ast) if isinstance(n, Loop)
                 and n.var == vec_loops[0].var[:-1] + "o"]
        assert outer and outer[0].parallel

    def test_strip_semantics(self):
        kernel = copy_kernel(8)
        ast, _ = influenced_ast(kernel)
        assert check_semantics(kernel, ast) == []

    def test_disable_strips_marks(self):
        ast, _ = influenced_ast(copy_kernel(16), enable=False)
        assert not any(isinstance(n, Loop) and n.vector for n in walk(ast))


class TestNonzeroLowerBounds:
    """Strip-mining rebases the vector loop at zero; the rewritten body
    must keep the original lower bound (corpus reproducer
    51f9eedf702a45d3: instances shifted by the dropped lower)."""

    def shifted_kernel(self, lower=2, cols=16):
        kernel = Kernel("shifted", params={"M": 8, "N": cols})
        kernel.add_tensor("A", (8, cols + lower))
        kernel.add_tensor("B", (8, cols + lower))
        kernel.add_statement("S", [("i", 0, "M"),
                                   ("j", lower, f"N + {lower}")],
                             writes=[("B", ["i", "j"])],
                             reads=[("A", ["i", "j"])])
        return kernel

    def test_shifted_vector_loop_semantics(self):
        kernel = self.shifted_kernel()
        ast, _ = influenced_ast(kernel)
        assert any(isinstance(n, Loop) and n.vector for n in walk(ast))
        assert check_semantics(kernel, ast) == []

    def test_shifted_novec_semantics(self):
        kernel = self.shifted_kernel()
        ast, _ = influenced_ast(kernel, enable=False)
        assert check_semantics(kernel, ast) == []


class TestDemotion:
    def test_indivisible_extent(self):
        ast, _ = influenced_ast(copy_kernel(15))  # 15 % 4, 15 % 2 != 0
        assert not any(isinstance(n, Loop) and n.vector for n in walk(ast))

    def test_int8_no_vector_type(self):
        # int8 has no 64/128-bit vector width in the paper's rule.
        ast, _ = influenced_ast(copy_kernel(16, dtype=INT8))
        assert not any(isinstance(n, Loop) and n.vector for n in walk(ast))

    def test_float64_uses_width_two(self):
        ast, _ = influenced_ast(copy_kernel(16, dtype=FLOAT64))
        vec = [n for n in walk(ast) if isinstance(n, Loop) and n.vector]
        assert vec and vec[0].vector_width == 2

    def test_carried_dependence_demotes(self):
        """B[i][j] = f(B[i][j-1]) carries a flow at j: grouping is illegal,
        the pass must demote."""
        kernel = copy_kernel(16, carried=True)
        ast, _ = influenced_ast(kernel)
        assert not any(isinstance(n, Loop) and n.vector for n in walk(ast))
        assert check_semantics(kernel, ast) == []


class TestUnguardedCalls:
    def test_guard_subtree_skipped(self):
        from repro.codegen.ast import Guard, Seq, StatementCall
        kernel = copy_kernel(8)
        stmt = kernel.statements[0]
        inner = StatementCall(stmt, {})
        guarded = Guard(conditions=[], body=Seq([inner]))
        free = StatementCall(stmt, {})
        calls = _unguarded_calls(Seq([guarded, free]))
        assert calls == [free]
