"""Tests for report generation and schedule serialization."""

import json

import pytest

from repro.codegen import generate_ast
from repro.codegen.ast import render_ast
from repro.eval import EvaluationConfig, evaluate_network
from repro.eval.report import (
    json_dump,
    markdown_summary,
    operators_csv,
    write_report,
)
from repro.ir.examples import matmul, running_example
from repro.schedule import InfluencedScheduler
from repro.schedule.serialize import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)


@pytest.fixture(scope="module")
def lstm_result():
    return evaluate_network("LSTM",
                            EvaluationConfig(limit_per_network=2,
                                             sample_blocks=2))


class TestReport:
    def test_csv_rows(self, lstm_result):
        text = operators_csv([lstm_result])
        lines = text.strip().splitlines()
        assert len(lines) == 1 + lstm_result.count_total
        assert lines[0].startswith("network,operator")

    def test_markdown_summary(self, lstm_result):
        text = markdown_summary([lstm_result])
        assert "LSTM" in text
        assert "geomean" in text

    def test_json_roundtrip(self, lstm_result):
        payload = json.loads(json_dump({"LSTM": lstm_result}))
        assert payload["LSTM"]["row"]["total"] == lstm_result.count_total
        assert len(payload["LSTM"]["operators"]) == lstm_result.count_total

    def test_write_report(self, lstm_result, tmp_path):
        paths = write_report({"LSTM": lstm_result}, tmp_path / "rep")
        assert {p.name for p in paths} == {"operators.csv", "summary.md",
                                           "results.json"}
        for path in paths:
            assert path.exists() and path.stat().st_size > 0


class TestScheduleSerialization:
    def test_roundtrip_preserves_codegen(self):
        kernel = running_example(8)
        scheduler = InfluencedScheduler(kernel)
        schedule = scheduler.schedule()
        rebuilt = schedule_from_json(kernel, schedule_to_json(schedule))
        assert render_ast(generate_ast(kernel, rebuilt)) == \
            render_ast(generate_ast(kernel, schedule))

    def test_roundtrip_preserves_metadata(self):
        kernel = matmul(4)
        schedule = InfluencedScheduler(kernel).schedule()
        rebuilt = schedule_from_dict(kernel, schedule_to_dict(schedule))
        assert [i.parallel for i in rebuilt.dims] == \
            [i.parallel for i in schedule.dims]
        assert [i.band for i in rebuilt.dims] == \
            [i.band for i in schedule.dims]

    def test_version_check(self):
        kernel = matmul(4)
        payload = schedule_to_dict(InfluencedScheduler(kernel).schedule())
        payload["version"] = 999
        with pytest.raises(ValueError):
            schedule_from_dict(kernel, payload)

    def test_statement_mismatch(self):
        a = matmul(4)
        b = running_example(4)
        payload = schedule_to_dict(InfluencedScheduler(a).schedule())
        with pytest.raises(ValueError):
            schedule_from_dict(b, payload)

    def test_param_mismatch(self):
        kernel = matmul(4)
        payload = schedule_to_dict(InfluencedScheduler(kernel).schedule())
        payload["params"] = ["Z"]
        with pytest.raises(ValueError):
            schedule_from_dict(kernel, payload)
