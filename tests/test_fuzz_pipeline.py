"""Pipeline fuzzing: random kernels -> schedule -> codegen -> semantics.

For every generated kernel we check, exhaustively at small sizes:

* the plain and the influenced schedules strongly satisfy every dependence
  (``verify_schedule``),
* the compiled (vectorized, GPU-mapped) AST executes exactly the iteration
  domains in a conflict-preserving order (``check_semantics``),
* the simulator can execute the mapped kernel.

This is the strongest whole-system invariant in the repository.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen import generate_ast, map_to_gpu, vectorize
from repro.codegen.interp import check_semantics
from repro.gpu import simulate_kernel
from repro.influence import build_influence_tree
from repro.ir import Kernel
from repro.schedule import InfluencedScheduler
from repro.schedule.analysis import verify_schedule

ITER_POOL = ["i", "j", "k"]
N = 4  # domain extent: small enough for exhaustive checking
WINDOW = 2  # extent of the windowed-access iterator ``r``

# Long hypothesis runs: deselected from tier-1, exercised by deep-verify.
pytestmark = pytest.mark.fuzz


@st.composite
def kernels(draw) -> Kernel:
    n_statements = draw(st.integers(1, 3))
    kernel = Kernel("fuzz", params={"N": N})
    # A pool of input tensors by rank, plus window-padded inputs for the
    # windowed-access production (``i + r`` stays in bounds).
    for rank in (1, 2, 3):
        kernel.add_tensor(f"In{rank}", (N,) * rank)
    pad = N + WINDOW - 1
    kernel.add_tensor("WIn1", (pad,))
    kernel.add_tensor("WIn2", (pad, pad))
    written: list[tuple[str, int]] = [(f"In{r}", r) for r in (1, 2, 3)]

    for index in range(n_statements):
        depth = draw(st.integers(1, 3))
        iters = ITER_POOL[:depth]
        triangular = depth >= 2 and draw(st.booleans())
        windowed = not triangular and draw(
            st.sampled_from([False, False, False, True]))
        reduction = (not triangular and not windowed and depth >= 2
                     and draw(st.sampled_from([False, False, False, True])))
        bounds = []
        for level, it in enumerate(iters):
            if triangular and level == 1:
                bounds.append((it, 0, "i + 1"))
            else:
                bounds.append((it, 0, "N"))
        if windowed:
            bounds.append(("r", 0, str(WINDOW)))

        def subscripts(rank: int) -> list[str]:
            # Affine subscripts over the available iterators: permutations,
            # possible reuse, offsets, and constants.
            subs = []
            for _ in range(rank):
                choice = draw(st.sampled_from(iters + ["const"]))
                if choice == "const":
                    subs.append(str(draw(st.integers(0, N - 1))))
                elif draw(st.booleans()) and not triangular:
                    subs.append(f"{choice} + 0")
                else:
                    subs.append(choice)
            return subs

        if reduction:
            out_rank = depth - 1  # innermost iterator reduces away
        else:
            out_rank = draw(st.integers(1, min(3, depth)))
        out_name = f"T{index}"
        kernel.add_tensor(out_name, (N,) * out_rank)
        # The write must cover distinct cells reasonably; use the first
        # out_rank iterators directly (scatter writes with repeated
        # iterators would make the op non-deterministic anyway).
        write_subs = list(iters[:out_rank])
        reads = []
        if windowed:
            # A shifted read through the window iterator; the write omits
            # ``r``, so the statement accumulates over the window.
            wrank = draw(st.sampled_from([1, 2]))
            subs = ([f"{iters[0]} + r"]
                    + [draw(st.sampled_from(iters))
                       for _ in range(wrank - 1)])
            reads.append((f"WIn{wrank}", subs))
            reads.append((out_name, list(write_subs)))
        n_reads = draw(st.integers(0, 2))
        for _ in range(n_reads):
            tensor, rank = draw(st.sampled_from(written))
            reads.append((tensor, subscripts(rank)))
        if reduction:
            reads.append((out_name, list(write_subs)))  # carried accumulator
            prior = [t for t, rank in written
                     if rank == 1 and t.startswith("T")]
            if prior:
                # reduce -> broadcast -> reduce: an earlier reduction's
                # row vector re-enters at lower depth.
                reads.append((prior[-1], [iters[0]]))
        elif not windowed and draw(st.booleans()):
            reads.append((out_name, list(write_subs)))  # accumulator style
        kernel.add_statement(f"S{index}", bounds,
                             writes=[(out_name, write_subs)], reads=reads)
        written.append((out_name, out_rank))
    kernel.validate()
    return kernel


@given(kernels())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large,
                                 HealthCheck.filter_too_much])
def test_fuzz_plain_pipeline(kernel):
    scheduler = InfluencedScheduler(kernel)
    schedule = scheduler.schedule()
    assert verify_schedule(schedule, scheduler.validity_relations) == []
    ast = generate_ast(kernel, schedule)
    ast = vectorize(ast, kernel, schedule, scheduler.relations, enable=False)
    mapped = map_to_gpu(kernel, ast, schedule, max_threads=4)
    assert check_semantics(kernel, mapped.ast) == []


@given(kernels())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large,
                                 HealthCheck.filter_too_much])
def test_fuzz_influenced_pipeline(kernel):
    scheduler = InfluencedScheduler(kernel)
    tree = build_influence_tree(kernel)
    schedule = scheduler.schedule(tree)
    assert verify_schedule(schedule, scheduler.validity_relations) == []
    ast = generate_ast(kernel, schedule)
    ast = vectorize(ast, kernel, schedule, scheduler.relations, enable=True)
    mapped = map_to_gpu(kernel, ast, schedule, max_threads=4)
    assert check_semantics(kernel, mapped.ast) == []
    profile = simulate_kernel(mapped, sample_blocks=2)
    assert profile.time > 0
