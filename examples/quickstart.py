#!/usr/bin/env python
"""Quickstart: compile one fused operator with and without influence.

Builds a small fused operator (an element-wise producer feeding a
reduction), runs the baseline and the influenced pipeline, prints both
generated kernels and the modelled execution times.

Run:  python examples/quickstart.py
"""

from repro.ir import Kernel
from repro.pipeline import AkgPipeline


def build_operator() -> Kernel:
    """C[i] = sum_k g(f(A[i]), D[k][i]) as two fused statements."""
    kernel = Kernel("quickstart_fused_op", params={"M": 4096, "K": 16})
    kernel.add_tensor("A", (4096,))
    kernel.add_tensor("B", (4096,))
    kernel.add_tensor("C", (4096,))
    kernel.add_tensor("D", (16, 4096))
    kernel.add_statement(
        "Producer", [("i", 0, "M")],
        writes=[("B", ["i"])], reads=[("A", ["i"])])
    kernel.add_statement(
        "Reduce", [("i", 0, "M"), ("k", 0, "K")],
        writes=[("C", ["i"])],
        reads=[("C", ["i"]), ("B", ["i"]), ("D", ["k", "i"])],
        flops=2)
    kernel.validate()
    return kernel


def main() -> None:
    kernel = build_operator()
    pipeline = AkgPipeline()

    print(f"Fused operator: {kernel}")
    print()
    for variant in ("isl", "infl"):
        compiled = pipeline.compile(kernel, variant)
        timing = pipeline.measure(compiled)
        label = {"isl": "baseline (isl-style)",
                 "infl": "influenced (+ vector types)"}[variant]
        print(f"=== {label} — {compiled.n_launches} kernel launch(es), "
              f"{timing.time * 1e6:.1f} us modelled, "
              f"{timing.dram_bytes / 1e6:.2f} MB DRAM ===")
        print(compiled.signature())
        print()

    isl = pipeline.compile_and_measure(kernel, "isl").time
    infl = pipeline.compile_and_measure(kernel, "infl").time
    print(f"influenced speedup over baseline: {isl / infl:.2f}x")


if __name__ == "__main__":
    main()
