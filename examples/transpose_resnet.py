#!/usr/bin/env python
"""The ResNet transpose scenario: 4D layout conversion (NCHW -> NHWC).

The networks with the paper's largest speedups (ResNet-50/101) are full of
layout-conversion "transpose" operators.  This example shows why influence
matters there:

* the baseline keeps the textual loop order, whose innermost loop is
  contiguous for the *reads* — every warp store then scatters across 32
  memory sectors, and the sectors are revisited too far apart for any cache
  to combine them (measured as DRAM write amplification);
* the influenced schedule flips the innermost dimension to the *store* side
  (the paper's w1 > w2 priority), vectorizes it, and arranges the next
  dimensions so the strided reads get combined by the cache instead.

Run:  python examples/transpose_resnet.py
"""

from repro.ir.types import FLOAT16
from repro.pipeline import AkgPipeline
from repro.workloads.operators import layout_conversion_op


def report(pipeline: AkgPipeline, kernel, label: str) -> None:
    print("=" * 72)
    print(label)
    print("=" * 72)
    baseline_time = None
    for variant in ("isl", "novec", "infl"):
        timing = pipeline.compile_and_measure(kernel, variant)
        profile = timing.profiles[0]
        if variant == "isl":
            baseline_time = timing.time
        print(f"  {variant:6s} {timing.time * 1e6:9.1f} us  "
              f"DRAM {timing.dram_bytes / 1e6:8.2f} MB  "
              f"coalescing {profile.coalescing_efficiency:5.2f}  "
              f"speedup {baseline_time / timing.time:5.2f}x")
    infl = pipeline.compile(kernel, "infl")
    print()
    print("influenced kernel:")
    print(infl.signature())
    print()


def main() -> None:
    pipeline = AkgPipeline()

    report(pipeline,
           layout_conversion_op("nchw_to_nhwc_f32", batch=2, channels=64,
                                height=128, width=128),
           "float32 NCHW -> NHWC conversion (2 x 64 x 128 x 128)")

    report(pipeline,
           layout_conversion_op("nchw_to_nhwc_f16", batch=2, channels=128,
                                height=128, width=128, dtype=FLOAT16),
           "float16 NCHW -> NHWC conversion (2 x 128 x 128 x 128) — "
           "half the element size doubles the write amplification")

    report(pipeline,
           layout_conversion_op("fused_conv_relu", batch=2, channels=64,
                                height=128, width=128, fused_elementwise=1),
           "conversion fused with an element-wise tail")


if __name__ == "__main__":
    main()
