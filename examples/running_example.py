#!/usr/bin/env python
"""The paper's running example end-to-end (Fig. 2 + Fig. 3).

Walks the full story of the paper on ``fused_mul_sub_mul_tensoradd``:

1. the input fused operator (Fig. 2(a));
2. what the baseline scheduler produces — two distributed nests with the
   inefficient ``D[k][i][j]`` access (Fig. 2(b));
3. Algorithm 2's influenced dimension scenarios and the influence
   constraint tree built from them (Fig. 3);
4. the influenced schedule: fused nests, outer ``forall``, innermost
   ``forvec`` prepared for vector types (Fig. 2(c));
5. the modelled execution times of all four configurations.

Run:  python examples/running_example.py
"""

from repro.influence import build_influence_tree, build_scenarios
from repro.ir.examples import running_example
from repro.pipeline import AkgPipeline
from repro.schedule import InfluencedScheduler


def main() -> None:
    kernel = running_example(32)
    pipeline = AkgPipeline()

    print("=" * 72)
    print("Fig. 2(a): the input fused operator")
    print("=" * 72)
    for s in kernel.statements:
        writes = ", ".join(str(a) for a in s.writes)
        reads = ", ".join(str(a) for a in s.reads)
        print(f"  {s.name} over {tuple(s.iterators)}: {writes} = f({reads})")

    print()
    print("=" * 72)
    print("Fig. 2(b): baseline (isl-style) result — distributed nests")
    print("=" * 72)
    isl = pipeline.compile(kernel, "isl")
    print(isl.signature())

    print()
    print("=" * 72)
    print("Fig. 3: influenced dimension scenarios and constraint tree")
    print("=" * 72)
    for name, scenarios in build_scenarios(kernel).items():
        for scenario in scenarios:
            print(f"  {name}: dims={scenario.dims} "
                  f"score={scenario.score:.2f} "
                  f"vector_width={scenario.vector_width}")
    tree = build_influence_tree(kernel)
    print()
    print(tree.pretty())

    print()
    print("=" * 72)
    print("Fig. 2(c): influenced result — fused, forall outer, forvec inner")
    print("=" * 72)
    scheduler = InfluencedScheduler(kernel)
    schedule = scheduler.schedule(tree)
    print("schedule functions:")
    print(schedule.pretty())
    print()
    infl = pipeline.compile(kernel, "infl")
    print(infl.signature())
    print()
    print(f"scheduler stats: {scheduler.stats}")

    print()
    print("=" * 72)
    print("Modelled execution times (GPU model, see DESIGN.md)")
    print("=" * 72)
    baseline = None
    for variant in ("isl", "tvm", "novec", "infl"):
        timing = pipeline.compile_and_measure(kernel, variant)
        if variant == "isl":
            baseline = timing.time
        print(f"  {variant:6s} {timing.time * 1e6:9.1f} us   "
              f"speedup over isl: {baseline / timing.time:5.2f}x   "
              f"launches: {timing.compiled.n_launches}")
    print()
    print("note: at this toy size (N=32) the fused Fig. 2(c) kernel only has")
    print("N-way parallelism, so the execution model shows the structural")
    print("transformation rather than a speedup; production operators carry")
    print("fat outer dimensions (see examples/quickstart.py for a shaped")
    print("instance of the same pattern, where fusion wins).")


if __name__ == "__main__":
    main()
