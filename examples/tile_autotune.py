#!/usr/bin/env python
"""Tile-size auto-tuning on the GPU model.

The paper's evaluation relies on each tool's auto-tuner to pick tile sizes;
this example runs our model-driven tuner (band tiling between codegen and
mapping) on two operators and prints the candidate table.

It also demonstrates an instructive interaction with the paper's approach:
on a 4D layout conversion, tiling the *baseline* schedule recovers part of
the gap that constraint injection closes — two different remedies for the
same memory-system problem.

Run:  python examples/tile_autotune.py
"""

from repro.gpu import simulate_kernel
from repro.pipeline.autotune import autotune_tile_sizes, compile_tiled
from repro.workloads.operators import layout_conversion_op, transpose2d_op


def tune(kernel, influenced, label):
    print("=" * 72)
    print(label)
    print("=" * 72)
    result = autotune_tile_sizes(kernel, influenced=influenced,
                                 sample_blocks=4)
    for candidate in sorted(result.candidates, key=lambda c: c.time):
        sizes = "x".join(map(str, candidate.tile_sizes)) or "untiled"
        marker = "  <== best" if candidate is result.best else ""
        print(f"  tiles {sizes:>9s}: {candidate.time * 1e6:9.1f} us, "
              f"DRAM {candidate.dram_bytes / 1e6:8.2f} MB{marker}")
    print(f"  speedup over untiled: {result.speedup_over_untiled():.2f}x")
    print()
    return result


def main() -> None:
    transpose = transpose2d_op("transpose_512", rows=512, cols=512)
    tune(transpose, influenced=False, label="2D transpose, baseline schedule")

    conversion = layout_conversion_op("conv_tune", batch=2, channels=64,
                                      height=64, width=64)
    baseline = tune(conversion, influenced=False,
                    label="4D layout conversion, baseline schedule + tiling")

    # Compare against the untiled influenced compilation.
    mapped, _ = compile_tiled(conversion, (), influenced=True,
                              enable_vec=True)
    influenced_profile = simulate_kernel(mapped, sample_blocks=4)
    print("=" * 72)
    print("two remedies for the conversion's write amplification")
    print("=" * 72)
    print(f"  baseline untiled : "
          f"{max(c.time for c in baseline.candidates) * 1e6:9.1f} us")
    print(f"  baseline + tiles : {baseline.best.time * 1e6:9.1f} us")
    print(f"  influenced (vec) : {influenced_profile.time * 1e6:9.1f} us")


if __name__ == "__main__":
    main()
