#!/usr/bin/env python
"""Constraint-tree explorer: hand-craft influence trees and watch the
scheduler's backtracking ladder react.

Three experiments on a 3D matmul-like kernel:

1. no influence — the plain (isl-configured) schedule;
2. a tree whose first branch is infeasible (it pins a row the progression
   constraints forbid) — the scheduler falls back to the right sibling;
3. a tree whose only branches are all infeasible — the scheduler abandons
   influence entirely and reproduces the plain schedule.

Run:  python examples/constraint_tree_explorer.py
"""

from repro.influence import InfluenceNode, InfluenceTree, theta_iter
from repro.ir.examples import matmul
from repro.schedule import InfluencedScheduler
from repro.solver.problem import var


def show(title: str, scheduler: InfluencedScheduler, schedule) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(schedule.pretty())
    stats = scheduler.stats
    print(f"  ilp solves: {stats.ilp_solves}, "
          f"sibling fallbacks: {stats.sibling_fallbacks}, "
          f"ancestor backtracks: {stats.ancestor_backtracks}, "
          f"influence abandoned: {stats.influence_abandoned}")
    print()


def main() -> None:
    kernel = matmul(16)  # S(i, j, k): C[i][j] += A[i][k] * B[k][j]

    scheduler = InfluencedScheduler(kernel)
    show("1. no influence (plain scheduling, textual order i,j,k)",
         scheduler, scheduler.schedule())

    # 2. First branch impossible: an all-zero first row violates the
    # progression constraints; the sibling pins k outermost instead.
    tree = InfluenceTree()
    tree.root.add_child(InfluenceNode(
        label="impossible",
        constraints=[var(theta_iter("S", 0, idx)).eq(0) for idx in range(3)]))
    tree.root.add_child(InfluenceNode(
        label="k-outermost",
        constraints=[var(theta_iter("S", 0, 2)).eq(1),
                     var(theta_iter("S", 0, 0)).eq(0),
                     var(theta_iter("S", 0, 1)).eq(0)]))
    scheduler = InfluencedScheduler(kernel)
    show("2. infeasible first branch -> sibling fallback pins k outermost",
         scheduler, scheduler.schedule(tree))

    # 3. Every branch impossible: influence is abandoned, the result is the
    # plain schedule again ("the scheduler output is no different than a
    # usual polyhedral scheduler").
    tree = InfluenceTree()
    for label in ("dead-end-a", "dead-end-b"):
        tree.root.add_child(InfluenceNode(
            label=label,
            constraints=[var(theta_iter("S", 0, idx)).eq(0)
                         for idx in range(3)]))
    scheduler = InfluencedScheduler(kernel)
    show("3. all branches infeasible -> influence abandoned",
         scheduler, scheduler.schedule(tree))


if __name__ == "__main__":
    main()
